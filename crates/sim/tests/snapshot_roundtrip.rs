//! Crash-safety integration tests for `Simulation::{snapshot, restore}`:
//! a restore-determinism matrix (fault schedules × snapshot ticks), a
//! randomized snapshot→restore→snapshot byte-stability property, and a
//! section-tampering battery proving corrupted state is refused with typed
//! errors rather than panics or silent drift.

use lunule_core::{make_balancer, BalancerKind};
use lunule_faults::FaultPlan;
use lunule_namespace::{InodeId, MdsRank, Namespace};
use lunule_sim::{FixedStream, OpStream, SimConfig, Simulation};
use lunule_snapshot::SnapshotError;
use lunule_telemetry::{events_jsonl, Telemetry};
use lunule_util::propcheck;

fn base_cfg() -> SimConfig {
    SimConfig {
        n_mds: 3,
        mds_capacity: 100.0,
        epoch_secs: 2,
        duration_secs: 24,
        stop_when_done: false,
        migration_bw: 1_000.0,
        migration_freeze_secs: 1,
        client_rate: 50.0,
        seed: 7,
        telemetry: Telemetry::enabled(),
        ..SimConfig::default()
    }
}

fn fixture(files: usize) -> (Namespace, Vec<InodeId>) {
    let mut ns = Namespace::new();
    let d = ns.mkdir(InodeId::ROOT, "d").unwrap();
    let ids = (0..files)
        .map(|i| ns.create_file(d, &format!("f{i}"), 4).unwrap())
        .collect();
    (ns, ids)
}

fn streams(files: usize, n: usize) -> Vec<Box<dyn OpStream>> {
    let (_, ids) = fixture(files);
    (0..n)
        .map(|_| Box::new(FixedStream::new(ids.clone())) as Box<dyn OpStream>)
        .collect()
}

fn build(cfg: SimConfig, files: usize, n_clients: usize) -> Simulation {
    let (ns, _) = fixture(files);
    Simulation::new(
        cfg.clone(),
        ns,
        make_balancer(BalancerKind::Lunule, cfg.mds_capacity),
        streams(files, n_clients),
    )
}

/// Every cell of the (fault schedule × snapshot tick) matrix restores into
/// a run whose stitched journal and final results are byte-identical to an
/// uninterrupted reference — a kill is recoverable at any tick, with or
/// without faults in flight.
#[test]
fn restore_matrix_is_byte_identical_across_faults_and_ticks() {
    type ConfigFn = fn() -> SimConfig;
    let quiet: ConfigFn = base_cfg;
    let chaotic: ConfigFn = || SimConfig {
        faults: FaultPlan::new()
            .crash(5, MdsRank(1), 6)
            .limp(9, MdsRank(2), 0.5, 8)
            .build(),
        ..base_cfg()
    };
    let schedules = [("quiet", quiet), ("chaotic", chaotic)];
    for (label, cfg) in schedules {
        let mut reference = build(cfg(), 240, 2);
        reference.run_until(24);
        let full = events_jsonl(&reference.telemetry().snapshot().unwrap());
        let ref_result = reference.finish();

        for snap_tick in [1u64, 6, 13, 23] {
            let mut first = build(cfg(), 240, 2);
            first.run_until(snap_tick);
            let snap = first.snapshot();
            assert_eq!(snap.tick, snap_tick);
            let pre = events_jsonl(&first.telemetry().snapshot().unwrap());
            drop(first); // the "kill"

            let mut resumed = Simulation::restore(
                cfg(),
                make_balancer(BalancerKind::Lunule, cfg().mds_capacity),
                streams(240, 2),
                &snap,
            )
            .unwrap();
            assert_eq!(resumed.now(), snap_tick);
            resumed.run_until(24);
            let post = events_jsonl(&resumed.telemetry().snapshot().unwrap());
            assert_eq!(
                format!("{pre}{post}"),
                full,
                "{label}: stitch at tick {snap_tick} must equal the reference"
            );
            assert_eq!(
                resumed.finish().per_mds_requests_total,
                ref_result.per_mds_requests_total,
                "{label}: results must survive a restore at tick {snap_tick}"
            );
        }
    }
}

/// Randomized property: for arbitrary (seed, size, snapshot tick),
/// snapshot→restore→snapshot is byte-stable and the restored run's journal
/// continues byte-identically. Byte-stability is the stronger form of the
/// idempotence CI relies on: re-snapshotting a restored run must not drift
/// by even one byte, or chained restores would diverge.
#[test]
fn snapshot_restore_snapshot_is_byte_stable_for_random_cut_points() {
    propcheck::run(16, |rng| {
        let files = rng.gen_range(40..240);
        let seed = rng.gen_range(1..1_000) as u64;
        let cfg = || SimConfig { seed, ..base_cfg() };
        let snap_tick = rng.gen_range(1..24) as u64;

        let mut reference = build(cfg(), files, 2);
        reference.run_until(24);
        let full = events_jsonl(&reference.telemetry().snapshot().unwrap());

        let mut first = build(cfg(), files, 2);
        first.run_until(snap_tick);
        let s1 = first.snapshot();
        let pre = events_jsonl(&first.telemetry().snapshot().unwrap());
        drop(first);

        let resumed = Simulation::restore(
            cfg(),
            make_balancer(BalancerKind::Lunule, cfg().mds_capacity),
            streams(files, 2),
            &s1,
        )
        .unwrap();
        let s2 = resumed.snapshot();
        assert_eq!(
            s1.to_bytes(),
            s2.to_bytes(),
            "snapshot -> restore -> snapshot must be byte-stable \
             (seed={seed}, files={files}, tick={snap_tick})"
        );

        let mut resumed = Simulation::restore(
            cfg(),
            make_balancer(BalancerKind::Lunule, cfg().mds_capacity),
            streams(files, 2),
            &s2,
        )
        .unwrap();
        resumed.run_until(24);
        let post = events_jsonl(&resumed.telemetry().snapshot().unwrap());
        assert_eq!(
            format!("{pre}{post}"),
            full,
            "journal must continue byte-identically (seed={seed}, tick={snap_tick})"
        );
    });
}

/// The tamper battery: every section of a valid snapshot is, in turn,
/// truncated, padded with trailing garbage, and removed outright. All
/// three corruptions of all sections must come back as typed
/// [`SnapshotError`]s — never a panic, never a silently accepted restore.
/// (Bit-flips inside the container are caught earlier, by the per-section
/// checksums in `Snapshot::from_bytes`; this battery attacks the layer
/// *above* the checksums, where payload bytes are valid but wrong.)
#[test]
fn tampered_sections_are_refused_with_typed_errors() {
    let mut sim = build(base_cfg(), 120, 2);
    sim.run_until(9);
    let snap = sim.snapshot();
    let restore = |snap: &lunule_snapshot::Snapshot| {
        Simulation::restore(
            base_cfg(),
            make_balancer(BalancerKind::Lunule, base_cfg().mds_capacity),
            streams(120, 2),
            snap,
        )
    };
    assert!(restore(&snap).is_ok(), "pristine snapshot must restore");

    let n_sections = snap.sections.len();
    assert!(n_sections >= 8, "expected the full section roster");
    for i in 0..n_sections {
        let name = snap.sections[i].name.clone();

        // A strict prefix of the payload: decoding runs out of bytes.
        let mut truncated = snap.clone();
        let keep = truncated.sections[i].payload.len() / 2;
        truncated.sections[i].payload.truncate(keep);
        let err = match restore(&truncated) {
            Ok(_) => panic!("truncated '{name}' section must be refused"),
            Err(e) => e,
        };
        assert!(
            matches!(err, SnapshotError::Decode { .. }),
            "truncated '{name}': expected a decode error, got {err}"
        );

        // Trailing garbage: decoding succeeds but exhaustion check fails.
        let mut padded = snap.clone();
        padded.sections[i].payload.extend_from_slice(&[0xAB; 4]);
        let err = match restore(&padded) {
            Ok(_) => panic!("padded '{name}' section must be refused"),
            Err(e) => e,
        };
        assert!(
            matches!(err, SnapshotError::Decode { .. }),
            "padded '{name}': expected a decode error, got {err}"
        );

        // The section is simply gone.
        let mut missing = snap.clone();
        missing.sections.remove(i);
        let err = match restore(&missing) {
            Ok(_) => panic!("missing '{name}' section must be refused"),
            Err(e) => e,
        };
        assert!(
            matches!(err, SnapshotError::MissingSection { .. }),
            "missing '{name}': expected MissingSection, got {err}"
        );
    }
}

// --- Cohort-model snapshot coverage -------------------------------------
//
// The default engine aggregates identical clients into cohorts, and its
// snapshots carry a "cohorts" section instead of per-client "clients"
// entries. The batteries below pin that section the same three ways the
// legacy one is pinned: it is present (so the generic tamper loop above
// provably exercises it), it survives snapshot→restore→snapshot without a
// byte of drift for multi-member groups, and structurally-wrong restores
// (wrong stream arity, tampered payload) are refused with typed errors.

fn grouped_streams(files: usize) -> Vec<(Box<dyn OpStream>, u64)> {
    let (_, ids) = fixture(files);
    let half = ids.len() / 2;
    vec![
        (
            Box::new(FixedStream::new(ids[..half].to_vec())) as Box<dyn OpStream>,
            5,
        ),
        (
            Box::new(FixedStream::new(ids[half..].to_vec())) as Box<dyn OpStream>,
            3,
        ),
    ]
}

fn grouped_build(cfg: SimConfig, files: usize) -> Simulation {
    let (ns, _) = fixture(files);
    Simulation::new_grouped(
        cfg.clone(),
        ns,
        make_balancer(BalancerKind::Lunule, cfg.mds_capacity),
        grouped_streams(files),
    )
}

fn grouped_restore_streams(files: usize) -> Vec<Box<dyn OpStream>> {
    grouped_streams(files).into_iter().map(|(s, _)| s).collect()
}

/// A grouped population's snapshot carries the "cohorts" section (and no
/// legacy "clients" section), and its member/stream counts read back
/// through the sizing accessors the daemon restores with.
#[test]
fn grouped_snapshot_carries_the_cohort_section() {
    let mut sim = grouped_build(base_cfg(), 120);
    sim.run_until(9);
    let snap = sim.snapshot();
    let names: Vec<&str> = snap.sections.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"cohorts"), "roster: {names:?}");
    assert!(
        !names.contains(&"clients"),
        "cohort snapshots must not also carry a legacy clients section"
    );
    assert_eq!(lunule_sim::snapshot_client_count(&snap).unwrap(), 8);
    assert_eq!(lunule_sim::snapshot_stream_count(&snap).unwrap(), 2);
}

/// Multi-member cohorts survive snapshot→restore→snapshot byte-stably at
/// random cut points, and the restored run's journal continues
/// byte-identically — the grouped twin of the per-client property above.
#[test]
fn grouped_cohort_restore_is_byte_stable_for_random_cut_points() {
    propcheck::run(8, |rng| {
        let files = rng.gen_range(40..200);
        let seed = rng.gen_range(1..1_000) as u64;
        let cfg = || SimConfig { seed, ..base_cfg() };
        let snap_tick = rng.gen_range(1..24) as u64;

        let mut reference = grouped_build(cfg(), files);
        reference.run_until(24);
        let full = events_jsonl(&reference.telemetry().snapshot().unwrap());

        let mut first = grouped_build(cfg(), files);
        first.run_until(snap_tick);
        let s1 = first.snapshot();
        let pre = events_jsonl(&first.telemetry().snapshot().unwrap());
        drop(first);

        let resumed = Simulation::restore(
            cfg(),
            make_balancer(BalancerKind::Lunule, cfg().mds_capacity),
            grouped_restore_streams(files),
            &s1,
        )
        .unwrap();
        let s2 = resumed.snapshot();
        assert_eq!(
            s1.to_bytes(),
            s2.to_bytes(),
            "grouped snapshot -> restore -> snapshot must be byte-stable \
             (seed={seed}, files={files}, tick={snap_tick})"
        );

        let mut resumed = Simulation::restore(
            cfg(),
            make_balancer(BalancerKind::Lunule, cfg().mds_capacity),
            grouped_restore_streams(files),
            &s2,
        )
        .unwrap();
        resumed.run_until(24);
        let post = events_jsonl(&resumed.telemetry().snapshot().unwrap());
        assert_eq!(
            format!("{pre}{post}"),
            full,
            "grouped journal must continue byte-identically \
             (seed={seed}, tick={snap_tick})"
        );
    });
}

/// Structurally-wrong grouped restores are refused with typed errors: a
/// stream arity that doesn't match the snapshot's group count, and the
/// three standard corruptions of the "cohorts" payload itself.
#[test]
fn grouped_cohort_section_tampering_is_refused() {
    let mut sim = grouped_build(base_cfg(), 120);
    sim.run_until(9);
    let snap = sim.snapshot();
    let restore = |snap: &lunule_snapshot::Snapshot, n_streams: usize| {
        Simulation::restore(
            base_cfg(),
            make_balancer(BalancerKind::Lunule, base_cfg().mds_capacity),
            grouped_restore_streams(120)
                .into_iter()
                .take(n_streams)
                .collect(),
            snap,
        )
    };
    assert!(restore(&snap, 2).is_ok(), "pristine snapshot must restore");
    assert!(
        restore(&snap, 1).is_err(),
        "restoring 2 groups with 1 stream must be refused"
    );

    let i = snap
        .sections
        .iter()
        .position(|s| s.name == "cohorts")
        .expect("cohorts section present");

    let mut truncated = snap.clone();
    let keep = truncated.sections[i].payload.len() / 2;
    truncated.sections[i].payload.truncate(keep);
    assert!(
        matches!(restore(&truncated, 2), Err(SnapshotError::Decode { .. })),
        "truncated cohorts payload must be a decode error"
    );

    let mut padded = snap.clone();
    padded.sections[i].payload.extend_from_slice(&[0xAB; 4]);
    assert!(
        matches!(restore(&padded, 2), Err(SnapshotError::Decode { .. })),
        "padded cohorts payload must be a decode error"
    );

    let mut missing = snap.clone();
    missing.sections.remove(i);
    assert!(
        matches!(
            restore(&missing, 2),
            Err(SnapshotError::MissingSection { .. })
        ),
        "missing cohorts section must be refused"
    );
}
