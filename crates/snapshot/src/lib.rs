//! The snapshot container: a versioned, self-validating binary file
//! holding the complete deterministic state of a simulation run.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic        [u8; 8]   = b"LUNSNAP\0"
//! version      u32       = FORMAT_VERSION
//! tick         u64         simulated tick the state was captured at
//! seed         u64         the run's master seed
//! digest       u64         FNV-1a over the canonical config string
//! n_sections   u64
//! per section:
//!   name       str         length-prefixed UTF-8
//!   crc32      u32         checksum of the payload bytes
//!   payload    bytes       length-prefixed opaque section body
//! ```
//!
//! The container knows nothing about what is *inside* a section — each
//! owning crate encodes its private state with `lunule_util::codec` and
//! hands the bytes over. Validation is layered: magic and version first,
//! then the header, then every section's CRC as it is read. Any mismatch
//! is a typed [`SnapshotError`], never a panic, so recovery code can fall
//! back to the newest valid snapshot in a directory
//! ([`find_latest_valid`]).
//!
//! Writing is crash-safe: the file is assembled in a `.tmp` sibling,
//! fsynced, atomically renamed over the destination, and the directory is
//! fsynced too — a snapshot either exists completely or not at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lunule_util::codec::{crc32, CodecError, Decoder, Encoder};
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File magic: identifies a Lunule snapshot regardless of extension.
pub const MAGIC: [u8; 8] = *b"LUNSNAP\0";

/// Current snapshot format version. Bump on any wire-format change; old
/// files are rejected with [`SnapshotError::UnsupportedVersion`] rather
/// than misread.
pub const FORMAT_VERSION: u32 = 1;

/// Why a snapshot could not be read or validated.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem failure (open, read, write, rename, sync).
    Io(io::Error),
    /// The file does not start with the snapshot magic.
    BadMagic,
    /// The file's format version is not one this build can read.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
    },
    /// The file ended before the declared structure was complete.
    Truncated {
        /// What was being decoded when the input ran dry.
        what: &'static str,
    },
    /// A section's payload does not match its recorded checksum.
    SectionChecksum {
        /// Name of the corrupted section.
        section: String,
    },
    /// The snapshot was taken under a different seed/configuration than
    /// the one it is being restored into.
    DigestMismatch {
        /// Digest recorded in the file.
        found: u64,
        /// Digest of the configuration attempting the restore.
        expected: u64,
    },
    /// A section body decoded to nonsense (bad tag, impossible length…).
    Decode {
        /// Section the error surfaced in.
        section: &'static str,
        /// The underlying codec error.
        source: CodecError,
    },
    /// A section the restore logic requires is absent.
    MissingSection {
        /// Name of the absent section.
        section: &'static str,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a lunule snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot format version {found} (this build reads {FORMAT_VERSION})"
                )
            }
            SnapshotError::Truncated { what } => {
                write!(f, "truncated snapshot while reading {what}")
            }
            SnapshotError::SectionChecksum { section } => {
                write!(f, "checksum mismatch in section '{section}'")
            }
            SnapshotError::DigestMismatch { found, expected } => write!(
                f,
                "snapshot was taken under a different seed/config \
                 (digest {found:#018x}, expected {expected:#018x})"
            ),
            SnapshotError::Decode { section, source } => {
                write!(f, "corrupt section '{section}': {source}")
            }
            SnapshotError::MissingSection { section } => {
                write!(f, "snapshot is missing required section '{section}'")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Decode { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// One named, opaque, checksummed payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    /// Section name (e.g. `"namespace"`, `"migrator"`).
    pub name: String,
    /// The encoded payload bytes.
    pub payload: Vec<u8>,
}

/// A decoded snapshot: header plus validated sections.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Simulated tick the state was captured at (the restore target
    /// resumes stepping from exactly this tick).
    pub tick: u64,
    /// Master seed of the run.
    pub seed: u64,
    /// FNV-1a digest of the canonical configuration string.
    pub digest: u64,
    /// Sections in write order.
    pub sections: Vec<Section>,
}

impl Snapshot {
    /// An empty snapshot at `tick` for the given identity.
    pub fn new(tick: u64, seed: u64, digest: u64) -> Self {
        Snapshot {
            tick,
            seed,
            digest,
            sections: Vec::new(),
        }
    }

    /// Appends a section.
    pub fn push_section(&mut self, name: &str, payload: Vec<u8>) {
        self.sections.push(Section {
            name: name.to_string(),
            payload,
        });
    }

    /// Looks a section up by name.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.payload.as_slice())
    }

    /// Looks a section up by name, failing with a typed error when absent.
    pub fn require_section(&self, name: &'static str) -> Result<&[u8], SnapshotError> {
        self.section(name)
            .ok_or(SnapshotError::MissingSection { section: name })
    }

    /// Serializes the snapshot to its on-disk byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        for b in MAGIC {
            e.put_u8(b);
        }
        e.put_u32(FORMAT_VERSION);
        e.put_u64(self.tick);
        e.put_u64(self.seed);
        e.put_u64(self.digest);
        e.put_usize(self.sections.len());
        for s in &self.sections {
            e.put_str(&s.name);
            e.put_u32(crc32(&s.payload));
            e.put_bytes(&s.payload);
        }
        e.into_bytes()
    }

    /// Parses and validates a snapshot from its byte layout. Every
    /// section's checksum is verified; the config digest is *not* checked
    /// here (the caller compares it against the restoring configuration
    /// via [`Snapshot::check_digest`], since only the caller knows it).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut d = Decoder::new(bytes);
        let mut magic = [0u8; 8];
        for b in &mut magic {
            *b = d
                .get_u8("magic")
                .map_err(|_| SnapshotError::Truncated { what: "magic" })?;
        }
        if magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = d
            .get_u32("version")
            .map_err(|_| SnapshotError::Truncated { what: "version" })?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let header = |what| SnapshotError::Truncated { what };
        let tick = d.get_u64("tick").map_err(|_| header("tick"))?;
        let seed = d.get_u64("seed").map_err(|_| header("seed"))?;
        let digest = d.get_u64("digest").map_err(|_| header("digest"))?;
        let n_sections = d
            .get_usize("section count")
            .map_err(|_| header("section count"))?;
        let mut sections = Vec::new();
        for _ in 0..n_sections {
            let name = d
                .get_str("section name")
                .map_err(|_| header("section name"))?;
            let crc = d
                .get_u32("section checksum")
                .map_err(|_| header("section checksum"))?;
            let payload = d
                .get_bytes("section payload")
                .map_err(|_| header("section payload"))?;
            if crc32(&payload) != crc {
                return Err(SnapshotError::SectionChecksum { section: name });
            }
            sections.push(Section { name, payload });
        }
        d.finish()
            .map_err(|_| SnapshotError::Truncated { what: "trailer" })?;
        Ok(Snapshot {
            tick,
            seed,
            digest,
            sections,
        })
    }

    /// Verifies the snapshot was taken under the given config digest.
    pub fn check_digest(&self, expected: u64) -> Result<(), SnapshotError> {
        if self.digest == expected {
            Ok(())
        } else {
            Err(SnapshotError::DigestMismatch {
                found: self.digest,
                expected,
            })
        }
    }
}

/// Writes `snapshot` to `path` crash-safely: assemble in `<path>.tmp`,
/// fsync the file, rename over the destination, fsync the directory. A
/// reader never observes a half-written snapshot.
pub fn write_atomic(path: &Path, snapshot: &Snapshot) -> Result<(), SnapshotError> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    let tmp = tmp_path(path);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&snapshot.to_bytes())?;
        file.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(SnapshotError::Io(e));
    }
    // Make the rename itself durable. Directory fsync is best-effort on
    // platforms where directories cannot be opened for sync.
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok(())
}

/// Reads and validates the snapshot at `path`.
pub fn read(path: &Path) -> Result<Snapshot, SnapshotError> {
    let bytes = fs::read(path)?;
    Snapshot::from_bytes(&bytes)
}

/// The sibling temp path used by [`write_atomic`].
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// The canonical snapshot filename for a tick: `snap-<tick>.lsnap` with
/// the tick zero-padded so lexicographic order equals numeric order.
pub fn snapshot_filename(tick: u64) -> String {
    format!("snap-{tick:020}.lsnap")
}

/// Scans `dir` for snapshot files and returns the newest (highest-tick)
/// one that parses and validates, together with its path. Corrupted,
/// truncated, or version-mismatched files are skipped — this is the
/// recovery fallback: a torn write or a flipped bit in the latest
/// snapshot silently falls back to the previous valid one. When
/// `expected_digest` is given, snapshots from other configurations are
/// skipped too. Returns `Ok(None)` when no valid snapshot exists.
pub fn find_latest_valid(
    dir: &Path,
    expected_digest: Option<u64>,
) -> Result<Option<(PathBuf, Snapshot)>, SnapshotError> {
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(SnapshotError::Io(e)),
    };
    let mut candidates: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("snap-") && name.ends_with(".lsnap") {
            candidates.push(path);
        }
    }
    // Highest tick first (zero-padded names sort lexicographically).
    candidates.sort();
    candidates.reverse();
    for path in candidates {
        let Ok(snap) = read(&path) else { continue };
        if let Some(expected) = expected_digest {
            if snap.digest != expected {
                continue;
            }
        }
        return Ok(Some((path, snap)));
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new(120, 42, 0xDEAD_BEEF);
        s.push_section("namespace", vec![1, 2, 3, 4, 5]);
        s.push_section("migrator", vec![]);
        s.push_section("clients", vec![255; 64]);
        s
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lunule-snap-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn byte_round_trip_is_exact() {
        let snap = sample();
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_bytes(), bytes, "re-encode is byte-stable");
        assert_eq!(back.section("migrator"), Some(&[][..]));
        assert!(back.section("absent").is_none());
        assert!(matches!(
            back.require_section("absent"),
            Err(SnapshotError::MissingSection { section: "absent" })
        ));
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::BadMagic)
        ));
        let mut bytes = sample().to_bytes();
        bytes[8] = 99; // version field
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn truncation_at_every_length_is_a_typed_error() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let err = Snapshot::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. }
                        | SnapshotError::BadMagic
                        | SnapshotError::SectionChecksum { .. }
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn flipped_payload_byte_fails_the_section_checksum() {
        let snap = sample();
        let clean = snap.to_bytes();
        // Locate the first payload byte of section "namespace" and flip it.
        let needle = [1u8, 2, 3, 4, 5];
        let pos = clean
            .windows(needle.len())
            .position(|w| w == needle)
            .unwrap();
        let mut bytes = clean.clone();
        bytes[pos] ^= 0x40;
        match Snapshot::from_bytes(&bytes) {
            Err(SnapshotError::SectionChecksum { section }) => {
                assert_eq!(section, "namespace");
            }
            other => unreachable!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn digest_check() {
        let snap = sample();
        assert!(snap.check_digest(0xDEAD_BEEF).is_ok());
        assert!(matches!(
            snap.check_digest(1),
            Err(SnapshotError::DigestMismatch {
                found: 0xDEAD_BEEF,
                expected: 1
            })
        ));
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = tmpdir("rw");
        let path = dir.join(snapshot_filename(120));
        let snap = sample();
        write_atomic(&path, &snap).unwrap();
        assert_eq!(read(&path).unwrap(), snap);
        // No temp file is left behind.
        assert!(!tmp_path(&path).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_valid_skips_corrupt_and_foreign_snapshots() {
        let dir = tmpdir("scan");
        let old = Snapshot::new(10, 42, 7);
        let mid = Snapshot::new(20, 42, 7);
        let newest = Snapshot::new(30, 42, 7);
        write_atomic(&dir.join(snapshot_filename(10)), &old).unwrap();
        write_atomic(&dir.join(snapshot_filename(20)), &mid).unwrap();
        write_atomic(&dir.join(snapshot_filename(30)), &newest).unwrap();
        // Corrupt the newest file: recovery must fall back to tick 20.
        let newest_path = dir.join(snapshot_filename(30));
        let mut bytes = fs::read(&newest_path).unwrap();
        let last = bytes.len() - 1;
        bytes.truncate(last);
        fs::write(&newest_path, &bytes).unwrap();
        let (path, snap) = find_latest_valid(&dir, Some(7)).unwrap().unwrap();
        assert_eq!(snap.tick, 20);
        assert_eq!(path, dir.join(snapshot_filename(20)));
        // A digest filter skips everything from another configuration.
        assert!(find_latest_valid(&dir, Some(8)).unwrap().is_none());
        // Without a digest filter, the newest *valid* file still wins.
        let (_, snap) = find_latest_valid(&dir, None).unwrap().unwrap();
        assert_eq!(snap.tick, 20);
        // A missing directory is "no snapshot", not an error.
        assert!(find_latest_valid(&dir.join("nope"), None)
            .unwrap()
            .is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn filenames_sort_numerically() {
        let mut names = vec![
            snapshot_filename(9),
            snapshot_filename(100),
            snapshot_filename(25),
        ];
        names.sort();
        assert_eq!(
            names,
            vec![
                snapshot_filename(9),
                snapshot_filename(25),
                snapshot_filename(100)
            ]
        );
    }
}
