//! Typed event records for the journal.
//!
//! Every interesting state transition in the stack maps to one [`Event`]
//! variant; the collector stamps each with the simulated tick and an
//! intra-tick sequence number to form an [`EventRecord`]. Events carry only
//! plain integers/floats/strings so this crate depends on nothing but
//! `lunule-util` — higher layers translate their domain types (ranks,
//! fragment keys) into these fields at the emission site.
//!
//! Serialisation is a flat JSON object with a `"type"` tag holding the
//! snake-case kind name, e.g.
//! `{"t":120,"seq":3,"type":"migration_start","from":0,"to":2,...}` — one
//! such object per line in the JSONL export.

use lunule_util::json::{FromJson, Json, JsonError, ToJson};

/// One structured journal entry, before timestamping.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A simulation run began.
    RunStart {
        /// Number of MDS ranks at start.
        n_mds: u32,
    },
    /// A simulated tick began (the clock was advanced to it).
    TickStart,
    /// A balance epoch closed and its statistics were recorded.
    EpochClose {
        /// The epoch index (1-based, matching `EpochRecord::epoch`).
        epoch: u64,
        /// Imbalance factor computed over this epoch's per-MDS IOPS.
        imbalance_factor: f64,
        /// Cluster-wide served IOPS for the epoch.
        total_iops: f64,
        /// Number of subtree exports the balancer planned this epoch.
        plan_subtrees: u64,
    },
    /// A named phase span opened (paired with `PhaseEnd` by name + order).
    PhaseBegin {
        /// Span name, e.g. `"balancer.epoch"`.
        name: String,
    },
    /// A named phase span closed.
    PhaseEnd {
        /// Span name matching the `PhaseBegin`.
        name: String,
    },
    /// The balancer's per-epoch decision outcome.
    Decision {
        /// The epoch index the decision was made for.
        epoch: u64,
        /// The imbalance factor the decision was based on.
        imbalance_factor: f64,
        /// Whether migration was triggered (threshold exceeded).
        triggered: bool,
        /// Number of exporter/importer pairings formed.
        pairings: u64,
        /// Total subtrees chosen for export across all pairings.
        subtrees: u64,
        /// Candidate subtrees considered before selection.
        candidates: u64,
    },
    /// A migration job was enqueued and began transferring.
    MigrationStart {
        /// Exporting rank.
        from: u32,
        /// Importing rank.
        to: u32,
        /// Root directory inode of the migrating subtree.
        dir: u64,
        /// Fragment id value bits of the subtree root frag.
        frag_value: u32,
        /// Fragment id bit count of the subtree root frag.
        frag_bits: u32,
        /// Inodes in the subtree when the job started.
        inodes: u64,
    },
    /// A migration job finished its commit phase; authority switched.
    MigrationCommit {
        /// Exporting rank.
        from: u32,
        /// Importing rank.
        to: u32,
        /// Root directory inode of the migrated subtree.
        dir: u64,
        /// Inodes transferred.
        inodes: u64,
        /// Ticks from start to commit (transfer + freeze window).
        duration_ticks: u64,
    },
    /// A migration job was abandoned (e.g. one endpoint drained).
    MigrationAbandon {
        /// Exporting rank.
        from: u32,
        /// Importing rank.
        to: u32,
        /// Root directory inode of the subtree.
        dir: u64,
        /// Inodes already moved when the job was dropped.
        moved: u64,
    },
    /// A directory fragment was split to carve out a migration root.
    FragSplit {
        /// Directory inode whose fragment split.
        dir: u64,
        /// Fragment id value bits of the fragment that was split.
        value: u32,
        /// Fragment id bit count before the split.
        bits: u32,
    },
    /// A directory's fragments were merged (reserved: the simulator does
    /// not merge yet, but the taxonomy covers it for forward compatibility).
    FragMerge {
        /// Directory inode whose fragments merged.
        dir: u64,
    },
    /// A new MDS rank joined the cluster.
    MdsAdd {
        /// The rank that was added.
        rank: u32,
    },
    /// An MDS rank was drained and its subtrees failed over.
    MdsDrain {
        /// The rank that was drained.
        rank: u32,
        /// Subtree roots re-homed onto surviving ranks.
        subtrees_failed_over: u64,
    },
    /// A batch of clients joined mid-run.
    ClientsAdd {
        /// Number of clients added.
        count: u64,
    },
    /// A scheduled fault fired (emitted once per fault, alongside any
    /// kind-specific event such as `RankCrashed`).
    FaultInjected {
        /// Fault taxonomy label: `crash`, `limp`, `report_loss`, or
        /// `migration_stall`.
        kind: String,
        /// Rank the fault targets.
        rank: u32,
        /// Principal magnitude (ticks or epochs, per `kind`).
        param: u64,
    },
    /// An MDS rank crashed: capacity zeroed, subtrees failed over.
    RankCrashed {
        /// The rank that went down.
        rank: u32,
        /// Scheduled outage length in ticks.
        down_ticks: u64,
    },
    /// A crashed MDS rank rejoined the cluster (empty, to be re-filled).
    RankRecovered {
        /// The rank that came back.
        rank: u32,
        /// Actual ticks the rank spent down.
        down_ticks: u64,
    },
    /// A migration job exceeded its transfer deadline.
    MigrationTimedOut {
        /// Exporting rank.
        from: u32,
        /// Importing rank.
        to: u32,
        /// Root directory inode of the subtree.
        dir: u64,
        /// Retry attempts already made when the timeout fired (0 on first).
        attempt: u32,
        /// Inodes moved when the deadline passed.
        moved: u64,
    },
    /// A balancer tuning knob was changed at runtime (daemon control
    /// plane).
    KnobSet {
        /// Knob name, e.g. `"if_threshold"`.
        name: String,
        /// The new value.
        value: f64,
    },
    /// A timed-out migration job was re-queued after backoff.
    MigrationRetried {
        /// Exporting rank.
        from: u32,
        /// Importing rank.
        to: u32,
        /// Root directory inode of the subtree.
        dir: u64,
        /// Retry attempt number this restart begins (1-based).
        attempt: u32,
        /// Backoff the job waited before restarting, in ticks.
        backoff_ticks: u64,
    },
}

impl Event {
    /// The snake-case kind tag used in serialised records and by
    /// [`crate::Telemetry::count_kind`].
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::TickStart => "tick_start",
            Event::EpochClose { .. } => "epoch_close",
            Event::PhaseBegin { .. } => "phase_begin",
            Event::PhaseEnd { .. } => "phase_end",
            Event::Decision { .. } => "decision",
            Event::MigrationStart { .. } => "migration_start",
            Event::MigrationCommit { .. } => "migration_commit",
            Event::MigrationAbandon { .. } => "migration_abandon",
            Event::FragSplit { .. } => "frag_split",
            Event::FragMerge { .. } => "frag_merge",
            Event::MdsAdd { .. } => "mds_add",
            Event::MdsDrain { .. } => "mds_drain",
            Event::ClientsAdd { .. } => "clients_add",
            Event::FaultInjected { .. } => "fault_injected",
            Event::RankCrashed { .. } => "rank_crashed",
            Event::RankRecovered { .. } => "rank_recovered",
            Event::KnobSet { .. } => "knob_set",
            Event::MigrationTimedOut { .. } => "migration_timeout",
            Event::MigrationRetried { .. } => "migration_retry",
        }
    }

    /// The variant's payload as ordered `(key, value)` JSON fields,
    /// excluding the `"type"` tag.
    fn payload(&self) -> Vec<(String, Json)> {
        fn field(name: &str, v: impl ToJson) -> (String, Json) {
            (name.to_string(), v.to_json())
        }
        match self {
            Event::RunStart { n_mds } => vec![field("n_mds", n_mds)],
            Event::TickStart => Vec::new(),
            Event::EpochClose {
                epoch,
                imbalance_factor,
                total_iops,
                plan_subtrees,
            } => vec![
                field("epoch", epoch),
                field("imbalance_factor", imbalance_factor),
                field("total_iops", total_iops),
                field("plan_subtrees", plan_subtrees),
            ],
            Event::PhaseBegin { name } => vec![field("name", name)],
            Event::PhaseEnd { name } => vec![field("name", name)],
            Event::Decision {
                epoch,
                imbalance_factor,
                triggered,
                pairings,
                subtrees,
                candidates,
            } => vec![
                field("epoch", epoch),
                field("imbalance_factor", imbalance_factor),
                field("triggered", triggered),
                field("pairings", pairings),
                field("subtrees", subtrees),
                field("candidates", candidates),
            ],
            Event::MigrationStart {
                from,
                to,
                dir,
                frag_value,
                frag_bits,
                inodes,
            } => vec![
                field("from", from),
                field("to", to),
                field("dir", dir),
                field("frag_value", frag_value),
                field("frag_bits", frag_bits),
                field("inodes", inodes),
            ],
            Event::MigrationCommit {
                from,
                to,
                dir,
                inodes,
                duration_ticks,
            } => vec![
                field("from", from),
                field("to", to),
                field("dir", dir),
                field("inodes", inodes),
                field("duration_ticks", duration_ticks),
            ],
            Event::MigrationAbandon {
                from,
                to,
                dir,
                moved,
            } => vec![
                field("from", from),
                field("to", to),
                field("dir", dir),
                field("moved", moved),
            ],
            Event::FragSplit { dir, value, bits } => vec![
                field("dir", dir),
                field("value", value),
                field("bits", bits),
            ],
            Event::FragMerge { dir } => vec![field("dir", dir)],
            Event::MdsAdd { rank } => vec![field("rank", rank)],
            Event::MdsDrain {
                rank,
                subtrees_failed_over,
            } => vec![
                field("rank", rank),
                field("subtrees_failed_over", subtrees_failed_over),
            ],
            Event::ClientsAdd { count } => vec![field("count", count)],
            Event::FaultInjected { kind, rank, param } => vec![
                field("kind", kind),
                field("rank", rank),
                field("param", param),
            ],
            Event::RankCrashed { rank, down_ticks } => {
                vec![field("rank", rank), field("down_ticks", down_ticks)]
            }
            Event::RankRecovered { rank, down_ticks } => {
                vec![field("rank", rank), field("down_ticks", down_ticks)]
            }
            Event::MigrationTimedOut {
                from,
                to,
                dir,
                attempt,
                moved,
            } => vec![
                field("from", from),
                field("to", to),
                field("dir", dir),
                field("attempt", attempt),
                field("moved", moved),
            ],
            Event::KnobSet { name, value } => {
                vec![field("name", name), field("value", value)]
            }
            Event::MigrationRetried {
                from,
                to,
                dir,
                attempt,
                backoff_ticks,
            } => vec![
                field("from", from),
                field("to", to),
                field("dir", dir),
                field("attempt", attempt),
                field("backoff_ticks", backoff_ticks),
            ],
        }
    }
}

fn req<T: FromJson>(v: &Json, key: &str) -> Result<T, JsonError> {
    let field = v
        .get(key)
        .ok_or_else(|| JsonError::new(format!("event missing field '{key}'")))?;
    T::from_json(field)
}

impl ToJson for Event {
    fn to_json(&self) -> Json {
        let mut fields = vec![("type".to_string(), Json::Str(self.kind().to_string()))];
        fields.extend(self.payload());
        Json::Obj(fields)
    }
}

impl FromJson for Event {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let kind: String = req(v, "type")?;
        match kind.as_str() {
            "run_start" => Ok(Event::RunStart {
                n_mds: req(v, "n_mds")?,
            }),
            "tick_start" => Ok(Event::TickStart),
            "epoch_close" => Ok(Event::EpochClose {
                epoch: req(v, "epoch")?,
                imbalance_factor: req(v, "imbalance_factor")?,
                total_iops: req(v, "total_iops")?,
                plan_subtrees: req(v, "plan_subtrees")?,
            }),
            "phase_begin" => Ok(Event::PhaseBegin {
                name: req(v, "name")?,
            }),
            "phase_end" => Ok(Event::PhaseEnd {
                name: req(v, "name")?,
            }),
            "decision" => Ok(Event::Decision {
                epoch: req(v, "epoch")?,
                imbalance_factor: req(v, "imbalance_factor")?,
                triggered: req(v, "triggered")?,
                pairings: req(v, "pairings")?,
                subtrees: req(v, "subtrees")?,
                candidates: req(v, "candidates")?,
            }),
            "migration_start" => Ok(Event::MigrationStart {
                from: req(v, "from")?,
                to: req(v, "to")?,
                dir: req(v, "dir")?,
                frag_value: req(v, "frag_value")?,
                frag_bits: req(v, "frag_bits")?,
                inodes: req(v, "inodes")?,
            }),
            "migration_commit" => Ok(Event::MigrationCommit {
                from: req(v, "from")?,
                to: req(v, "to")?,
                dir: req(v, "dir")?,
                inodes: req(v, "inodes")?,
                duration_ticks: req(v, "duration_ticks")?,
            }),
            "migration_abandon" => Ok(Event::MigrationAbandon {
                from: req(v, "from")?,
                to: req(v, "to")?,
                dir: req(v, "dir")?,
                moved: req(v, "moved")?,
            }),
            "frag_split" => Ok(Event::FragSplit {
                dir: req(v, "dir")?,
                value: req(v, "value")?,
                bits: req(v, "bits")?,
            }),
            "frag_merge" => Ok(Event::FragMerge {
                dir: req(v, "dir")?,
            }),
            "mds_add" => Ok(Event::MdsAdd {
                rank: req(v, "rank")?,
            }),
            "mds_drain" => Ok(Event::MdsDrain {
                rank: req(v, "rank")?,
                subtrees_failed_over: req(v, "subtrees_failed_over")?,
            }),
            "clients_add" => Ok(Event::ClientsAdd {
                count: req(v, "count")?,
            }),
            "fault_injected" => Ok(Event::FaultInjected {
                kind: req(v, "kind")?,
                rank: req(v, "rank")?,
                param: req(v, "param")?,
            }),
            "rank_crashed" => Ok(Event::RankCrashed {
                rank: req(v, "rank")?,
                down_ticks: req(v, "down_ticks")?,
            }),
            "rank_recovered" => Ok(Event::RankRecovered {
                rank: req(v, "rank")?,
                down_ticks: req(v, "down_ticks")?,
            }),
            "knob_set" => Ok(Event::KnobSet {
                name: req(v, "name")?,
                value: req(v, "value")?,
            }),
            "migration_timeout" => Ok(Event::MigrationTimedOut {
                from: req(v, "from")?,
                to: req(v, "to")?,
                dir: req(v, "dir")?,
                attempt: req(v, "attempt")?,
                moved: req(v, "moved")?,
            }),
            "migration_retry" => Ok(Event::MigrationRetried {
                from: req(v, "from")?,
                to: req(v, "to")?,
                dir: req(v, "dir")?,
                attempt: req(v, "attempt")?,
                backoff_ticks: req(v, "backoff_ticks")?,
            }),
            other => Err(JsonError::new(format!("unknown event type '{other}'"))),
        }
    }
}

/// An [`Event`] stamped with the deterministic clock.
#[derive(Clone, Debug, PartialEq)]
pub struct EventRecord {
    /// Simulated tick the event was emitted at.
    pub t: u64,
    /// Intra-tick emission index (resets to 0 at each clock advance).
    pub seq: u64,
    /// The event payload.
    pub event: Event,
}

impl ToJson for EventRecord {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("t".to_string(), self.t.to_json()),
            ("seq".to_string(), self.seq.to_json()),
        ];
        if let Json::Obj(event_fields) = self.event.to_json() {
            fields.extend(event_fields);
        }
        Json::Obj(fields)
    }
}

impl FromJson for EventRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(EventRecord {
            t: req(v, "t")?,
            seq: req(v, "seq")?,
            event: Event::from_json(v)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<Event> {
        vec![
            Event::RunStart { n_mds: 5 },
            Event::TickStart,
            Event::EpochClose {
                epoch: 3,
                imbalance_factor: 0.42,
                total_iops: 1250.5,
                plan_subtrees: 2,
            },
            Event::PhaseBegin {
                name: "balancer.epoch".into(),
            },
            Event::PhaseEnd {
                name: "balancer.epoch".into(),
            },
            Event::Decision {
                epoch: 3,
                imbalance_factor: 0.42,
                triggered: true,
                pairings: 2,
                subtrees: 4,
                candidates: 17,
            },
            Event::MigrationStart {
                from: 0,
                to: 2,
                dir: 99,
                frag_value: 1,
                frag_bits: 1,
                inodes: 300,
            },
            Event::MigrationCommit {
                from: 0,
                to: 2,
                dir: 99,
                inodes: 300,
                duration_ticks: 12,
            },
            Event::MigrationAbandon {
                from: 0,
                to: 2,
                dir: 99,
                moved: 120,
            },
            Event::FragSplit {
                dir: 99,
                value: 0,
                bits: 1,
            },
            Event::FragMerge { dir: 99 },
            Event::MdsAdd { rank: 4 },
            Event::MdsDrain {
                rank: 1,
                subtrees_failed_over: 6,
            },
            Event::ClientsAdd { count: 32 },
            Event::FaultInjected {
                kind: "crash".into(),
                rank: 1,
                param: 60,
            },
            Event::RankCrashed {
                rank: 1,
                down_ticks: 60,
            },
            Event::RankRecovered {
                rank: 1,
                down_ticks: 61,
            },
            Event::KnobSet {
                name: "if_threshold".into(),
                value: 0.15,
            },
            Event::MigrationTimedOut {
                from: 0,
                to: 2,
                dir: 99,
                attempt: 0,
                moved: 120,
            },
            Event::MigrationRetried {
                from: 0,
                to: 2,
                dir: 99,
                attempt: 1,
                backoff_ticks: 8,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        for (i, event) in all_variants().into_iter().enumerate() {
            let record = EventRecord {
                t: 10 + i as u64,
                seq: i as u64,
                event,
            };
            let line = record.to_json().to_string_compact();
            let parsed = Json::parse(&line).unwrap();
            let back = EventRecord::from_json(&parsed).unwrap();
            assert_eq!(back, record, "variant {i} failed round trip: {line}");
        }
    }

    #[test]
    fn kind_tags_are_unique() {
        let variants = all_variants();
        let mut kinds: Vec<&str> = variants.iter().map(Event::kind).collect();
        let total = kinds.len();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), total);
    }

    #[test]
    fn record_serialises_flat_with_type_tag() {
        let record = EventRecord {
            t: 120,
            seq: 3,
            event: Event::MdsAdd { rank: 7 },
        };
        let line = record.to_json().to_string_compact();
        assert_eq!(line, r#"{"t":120,"seq":3,"type":"mds_add","rank":7}"#);
    }

    #[test]
    fn unknown_type_is_rejected() {
        let v = Json::parse(r#"{"t":0,"seq":0,"type":"warp_core_breach"}"#).unwrap();
        assert!(EventRecord::from_json(&v).is_err());
    }

    #[test]
    fn missing_payload_field_is_rejected() {
        let v = Json::parse(r#"{"t":0,"seq":0,"type":"mds_add"}"#).unwrap();
        assert!(EventRecord::from_json(&v).is_err());
    }
}
