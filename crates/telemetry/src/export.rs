//! Exporters: JSONL event log, CSV metric series, Chrome `trace_event`.
//!
//! All three render from a [`Snapshot`] and are deterministic: identical
//! snapshots produce byte-identical files. Numbers are formatted through
//! the `lunule-util` JSON writer so integers never grow a decimal point
//! and floats render stably.
//!
//! * `<label>.events.jsonl` — one flat event object per line (see
//!   [`crate::event`] for the schema). Parse back with
//!   [`parse_events_jsonl`].
//! * `<label>.metrics.csv` — long format `kind,name,label,tick,value`.
//!   Counters and histogram summary statistics have no tick (empty cell);
//!   gauges emit one row per sample.
//! * `<label>.trace.json` — a Chrome `trace_event` document
//!   (`{"traceEvents":[...]}`): phase spans become `B`/`E` pairs, other
//!   events become instants, gauge series become counter tracks. Open it
//!   in `chrome://tracing` or <https://ui.perfetto.dev>. Timestamps are
//!   synthesised as `tick * 1_000_000 + seq` microseconds so one simulated
//!   second renders as one trace second and intra-tick ordering survives.

use std::io::Write;
use std::path::{Path, PathBuf};

use lunule_util::json::{FromJson, Json, JsonError, ToJson};

use crate::event::{Event, EventRecord};
use crate::Snapshot;

/// Microseconds per simulated tick in the Chrome trace timeline.
const TICK_US: u64 = 1_000_000;

/// Renders the JSONL event log.
pub fn events_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for record in &snap.events {
        out.push_str(&record.to_json().to_string_compact());
        out.push('\n');
    }
    out
}

/// Parses a JSONL event log back into records, failing on the first bad
/// line. The inverse of [`events_jsonl`]; CI uses it to round-trip traces.
pub fn parse_events_jsonl(text: &str) -> Result<Vec<EventRecord>, JsonError> {
    text.lines()
        .filter(|line| !line.trim().is_empty())
        .map(|line| EventRecord::from_json(&Json::parse(line)?))
        .collect()
}

/// Formats a float through the JSON writer for stable output.
fn fmt_f64(v: f64) -> String {
    Json::Num(v).to_string_compact()
}

/// Renders the long-format CSV metric time series.
pub fn metrics_csv(snap: &Snapshot) -> String {
    let mut out = String::from("kind,name,label,tick,value\n");
    for (name, label, value) in snap.metrics.counters() {
        out.push_str(&format!("counter,{name},{label},,{value}\n"));
    }
    for (name, label, series) in snap.metrics.gauges() {
        for &(tick, value) in series {
            out.push_str(&format!("gauge,{name},{label},{tick},{}\n", fmt_f64(value)));
        }
    }
    for (name, hist) in snap.metrics.histograms() {
        let stats = [
            ("count", hist.count()),
            ("sum", hist.sum()),
            ("p50", hist.p50()),
            ("p95", hist.p95()),
            ("p99", hist.p99()),
            ("max", hist.max()),
        ];
        for (stat, value) in stats {
            out.push_str(&format!("histogram,{name}.{stat},0,,{value}\n"));
        }
        out.push_str(&format!(
            "histogram,{name}.mean,0,,{}\n",
            fmt_f64(hist.mean())
        ));
    }
    out
}

/// One Chrome `trace_event` object.
fn trace_obj(
    name: &str,
    ph: &str,
    ts: u64,
    args: Vec<(String, Json)>,
    extra: Vec<(String, Json)>,
) -> Json {
    let mut fields = vec![
        ("name".to_string(), Json::Str(name.to_string())),
        ("ph".to_string(), Json::Str(ph.to_string())),
        ("ts".to_string(), ts.to_json()),
        ("pid".to_string(), Json::Num(0.0)),
        ("tid".to_string(), Json::Num(0.0)),
    ];
    fields.extend(extra);
    if !args.is_empty() {
        fields.push(("args".to_string(), Json::Obj(args)));
    }
    Json::Obj(fields)
}

/// The event's payload fields (everything but the `"type"` tag), for use
/// as Chrome trace `args`.
fn event_args(event: &Event) -> Vec<(String, Json)> {
    match event.to_json() {
        Json::Obj(fields) => fields.into_iter().filter(|(k, _)| k != "type").collect(),
        _ => Vec::new(),
    }
}

/// Renders the Chrome `trace_event` JSON document.
pub fn chrome_trace(snap: &Snapshot) -> String {
    let mut trace_events = Vec::new();
    for record in &snap.events {
        let ts = record.t * TICK_US + record.seq;
        match &record.event {
            // TickStart instants would flood the timeline; the tick grid
            // is already implied by the timestamp scale.
            Event::TickStart => {}
            Event::PhaseBegin { name } => {
                trace_events.push(trace_obj(name, "B", ts, Vec::new(), Vec::new()));
            }
            Event::PhaseEnd { name } => {
                trace_events.push(trace_obj(name, "E", ts, Vec::new(), Vec::new()));
            }
            other => {
                trace_events.push(trace_obj(
                    other.kind(),
                    "i",
                    ts,
                    event_args(other),
                    vec![("s".to_string(), Json::Str("t".to_string()))],
                ));
            }
        }
    }
    for (name, label, series) in snap.metrics.gauges() {
        let track = format!("{name}[{label}]");
        for &(tick, value) in series {
            trace_events.push(trace_obj(
                &track,
                "C",
                tick * TICK_US,
                vec![("value".to_string(), Json::Num(value))],
                Vec::new(),
            ));
        }
    }
    Json::Obj(vec![("traceEvents".to_string(), Json::Arr(trace_events))]).to_string_compact()
}

/// Structural check that a trace document is well-formed Chrome JSON:
/// parses, has a `traceEvents` array, every entry has `name`/`ph`/`ts`,
/// and `B`/`E` phase events are balanced. Returns the event count.
pub fn validate_chrome_trace(text: &str) -> Result<usize, JsonError> {
    let doc = Json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| JsonError::new("missing traceEvents array"))?;
    let mut depth = 0i64;
    for (i, entry) in events.iter().enumerate() {
        let ph = entry
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError::new(format!("traceEvents[{i}] missing ph")))?;
        if entry.get("name").and_then(Json::as_str).is_none() {
            return Err(JsonError::new(format!("traceEvents[{i}] missing name")));
        }
        if entry.get("ts").and_then(Json::as_f64).is_none() {
            return Err(JsonError::new(format!("traceEvents[{i}] missing ts")));
        }
        match ph {
            "B" => depth += 1,
            "E" => {
                depth -= 1;
                if depth < 0 {
                    return Err(JsonError::new(format!(
                        "traceEvents[{i}]: E without matching B"
                    )));
                }
            }
            "i" | "C" => {}
            other => {
                return Err(JsonError::new(format!(
                    "traceEvents[{i}]: unexpected phase '{other}'"
                )));
            }
        }
    }
    if depth != 0 {
        return Err(JsonError::new(format!("{depth} unclosed B spans")));
    }
    Ok(events.len())
}

/// Writes all three artifacts into `dir` (created if absent) with the stem
/// `label`, returning the paths in `[jsonl, csv, trace]` order.
pub fn export_all(snap: &Snapshot, dir: &Path, label: &str) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let artifacts = [
        (format!("{label}.events.jsonl"), events_jsonl(snap)),
        (format!("{label}.metrics.csv"), metrics_csv(snap)),
        (format!("{label}.trace.json"), chrome_trace(snap)),
    ];
    let mut paths = Vec::with_capacity(artifacts.len());
    for (file_name, contents) in artifacts {
        let path = dir.join(file_name);
        let mut f = std::fs::File::create(&path)?;
        f.write_all(contents.as_bytes())?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, Telemetry};

    fn sample_telemetry() -> Telemetry {
        let t = Telemetry::enabled();
        t.emit(|| Event::RunStart { n_mds: 2 });
        t.set_clock(1);
        t.emit(|| Event::TickStart);
        t.gauge_set("mds.iops", 0, 100.0);
        t.gauge_set("mds.iops", 1, 50.5);
        t.histogram_record("stall", 0);
        t.histogram_record("stall", 7);
        t.counter_add("ops", 12);
        t.set_clock(2);
        {
            let _span = t.span("balancer.epoch");
            t.emit(|| Event::Decision {
                epoch: 1,
                imbalance_factor: 0.3,
                triggered: false,
                pairings: 0,
                subtrees: 0,
                candidates: 5,
            });
        }
        t
    }

    #[test]
    fn jsonl_round_trips() {
        let t = sample_telemetry();
        let snap = t.snapshot().unwrap();
        let text = events_jsonl(&snap);
        let back = parse_events_jsonl(&text).unwrap();
        assert_eq!(back, snap.events);
    }

    #[test]
    fn jsonl_rejects_corrupt_lines() {
        assert!(parse_events_jsonl("{\"t\":0,").is_err());
        assert!(parse_events_jsonl("{\"t\":0,\"seq\":0,\"type\":\"nope\"}").is_err());
        assert!(parse_events_jsonl("").unwrap().is_empty());
    }

    #[test]
    fn csv_has_header_and_all_metric_kinds() {
        let t = sample_telemetry();
        let csv = metrics_csv(&t.snapshot().unwrap());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "kind,name,label,tick,value");
        assert!(lines.contains(&"counter,ops,0,,12"));
        assert!(lines.contains(&"gauge,mds.iops,0,1,100"));
        assert!(lines.contains(&"gauge,mds.iops,1,1,50.5"));
        assert!(lines.contains(&"histogram,stall.count,0,,2"));
        assert!(lines.contains(&"histogram,stall.p50,0,,0"));
        assert!(lines.contains(&"histogram,stall.max,0,,7"));
        assert!(lines.contains(&"histogram,stall.mean,0,,3.5"));
    }

    #[test]
    fn chrome_trace_validates_and_balances_spans() {
        let t = sample_telemetry();
        let trace = chrome_trace(&t.snapshot().unwrap());
        let n = validate_chrome_trace(&trace).unwrap();
        // run_start, B, decision instant, E, and 2 gauge counter samples;
        // tick_start is deliberately dropped.
        assert_eq!(n, 6);
        assert!(trace.contains("\"ph\":\"B\""));
        assert!(trace.contains("\"ph\":\"E\""));
        assert!(trace.contains("\"ph\":\"C\""));
        assert!(!trace.contains("tick_start"));
    }

    #[test]
    fn trace_timestamps_encode_tick_and_sequence() {
        let t = Telemetry::enabled();
        t.set_clock(3);
        t.emit(|| Event::MdsAdd { rank: 0 });
        t.emit(|| Event::MdsAdd { rank: 1 });
        let trace = chrome_trace(&t.snapshot().unwrap());
        assert!(trace.contains("\"ts\":3000000"));
        assert!(trace.contains("\"ts\":3000001"));
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        let unbalanced = r#"{"traceEvents":[{"name":"x","ph":"E","ts":0,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(unbalanced).is_err());
        let bad_phase = r#"{"traceEvents":[{"name":"x","ph":"Z","ts":0,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(bad_phase).is_err());
    }

    #[test]
    fn exports_are_deterministic_across_identical_runs() {
        let a = sample_telemetry().snapshot().unwrap();
        let b = sample_telemetry().snapshot().unwrap();
        assert_eq!(events_jsonl(&a), events_jsonl(&b));
        assert_eq!(metrics_csv(&a), metrics_csv(&b));
        assert_eq!(chrome_trace(&a), chrome_trace(&b));
    }

    #[test]
    fn export_all_writes_three_files() {
        let t = sample_telemetry();
        let dir =
            std::env::temp_dir().join(format!("lunule-telemetry-test-{}", std::process::id()));
        let paths = t.export(&dir, "unit").unwrap();
        assert_eq!(paths.len(), 3);
        for p in &paths {
            let text = std::fs::read_to_string(p).unwrap();
            assert!(!text.is_empty(), "{p:?} is empty");
        }
        let trace = std::fs::read_to_string(&paths[2]).unwrap();
        assert!(validate_chrome_trace(&trace).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
