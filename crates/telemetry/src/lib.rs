//! # lunule-telemetry
//!
//! The observability substrate of the Lunule stack: a dependency-light
//! metrics registry (counters, gauges, fixed-bucket histograms) plus a
//! structured, typed event journal, all carried on the **simulator's
//! deterministic clock** — never wall time — so two runs with the same seed
//! produce byte-identical traces.
//!
//! The central type is the [`Telemetry`] handle. It is a cheap clone
//! (`Option<Arc<Mutex<..>>>` inside) that every layer of the stack holds:
//! the simulator stamps the clock and emits cluster events, the balancer
//! records decision phases as nested [`Span`]s, and the migrator journals
//! migration lifecycles. A [`Telemetry::disabled`] handle keeps the hot
//! path allocation-free — every recording method is a single `None` check —
//! so default runs pay approximately nothing.
//!
//! Three exporters turn a collected run into files (see [`export`]):
//!
//! * **JSONL** event log — one [`EventRecord`] per line;
//! * **CSV** metric time-series — long-format `kind,name,label,tick,value`;
//! * **Chrome `trace_event` JSON** — loadable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev): spans become B/E pairs, events
//!   become instants, gauges become counter tracks.
//!
//! Determinism rule: event timestamps are `(tick, seq)` where `seq` is the
//! intra-tick emission index. Exported Chrome timestamps are synthesised as
//! `tick * 1_000_000 + seq` microseconds; no `SystemTime`/`Instant` is read
//! anywhere in this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod metrics;
mod ring;

pub use event::{Event, EventRecord};
pub use export::{
    chrome_trace, events_jsonl, export_all, metrics_csv, parse_events_jsonl, validate_chrome_trace,
};
pub use metrics::{FixedHistogram, MetricsRegistry};

use std::sync::{Arc, Mutex, MutexGuard};

/// Everything a run collected: drained by the exporters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// The event journal, in emission order.
    pub events: Vec<EventRecord>,
    /// Counters, gauges and histograms.
    pub metrics: MetricsRegistry,
    /// The last simulated tick the clock was advanced to.
    pub last_tick: u64,
}

/// The mutable state behind an enabled handle.
#[derive(Debug, Default)]
struct Collector {
    /// Current simulated time, set by the simulator once per tick.
    clock: u64,
    /// Intra-tick emission index; resets when the clock advances.
    seq: u64,
    events: Vec<EventRecord>,
    metrics: MetricsRegistry,
}

impl Collector {
    /// Applies one drained hot-path record to the registry. Gauges stamp
    /// with the current clock — correct because every clock mutation
    /// drains first, so the clock here is the clock at push time.
    fn apply_hot(&mut self, name: &'static str, rec: ring::HotRecord) {
        match rec.kind {
            ring::HotKind::Counter => self.metrics.counter_add(name, rec.label, rec.value),
            ring::HotKind::Histogram => self.metrics.histogram_record_n(name, rec.value, rec.count),
            ring::HotKind::Gauge => {
                let tick = self.clock;
                self.metrics
                    .gauge_set(name, rec.label, tick, f64::from_bits(rec.value));
            }
        }
    }
}

/// A shared handle onto one run's telemetry collector.
///
/// Clones are cheap and all point at the same collector, so the simulator,
/// balancer, and migrator can each hold one. A disabled handle (the
/// default) turns every method into a branch on `None`.
///
/// Hot-path metric calls (`counter_add*`, `histogram_record*`,
/// `gauge_set`) go through a lock-free SPSC ring instead of the collector
/// mutex; the rings are drained — in shard order, coalescing equal-key
/// records exactly — at every clock change and before every read, so
/// observable state is indistinguishable from the direct path.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Collector>>>,
    rings: Option<Arc<ring::RingSet>>,
}

/// The shard the single serial producer (the simulator thread) pushes to.
const MAIN_SHARD: usize = 0;

/// One entry of a [`Telemetry::record_batch`] flush: the two hot-path
/// metric kinds whose records are associative and therefore batchable.
/// Gauges are excluded on purpose — their series order is observable, so
/// they must go through the ordered per-record path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricRecord {
    /// `counter_add_labeled(name, label, delta)`.
    Counter {
        /// Counter name (a string literal at the call site).
        name: &'static str,
        /// Label dimension, e.g. an MDS rank.
        label: u32,
        /// Amount to add.
        delta: u64,
    },
    /// `histogram_record_n(name, value, count)`.
    Histogram {
        /// Histogram name (a string literal at the call site).
        name: &'static str,
        /// Sample value.
        value: u64,
        /// How many times the sample occurred.
        count: u64,
    },
}

impl Telemetry {
    /// A no-op handle: every recording call returns immediately without
    /// locking or allocating. This is the default for all simulations.
    pub fn disabled() -> Self {
        Telemetry {
            inner: None,
            rings: None,
        }
    }

    /// A live handle with an empty collector at tick 0.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Mutex::new(Collector::default()))),
            rings: Some(Arc::new(ring::RingSet::new(1, ring::DEFAULT_RING_CAPACITY))),
        }
    }

    /// True when this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Locks the collector, recovering from poisoning (a panicking sim
    /// thread must not silently discard the journal collected so far).
    fn lock(inner: &Arc<Mutex<Collector>>) -> MutexGuard<'_, Collector> {
        inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Locks the collector and drains the rings into it first, so the
    /// caller observes (or stamps relative to) fully settled state.
    fn lock_settled<'a>(&self, inner: &'a Arc<Mutex<Collector>>) -> MutexGuard<'a, Collector> {
        let mut c = Self::lock(inner);
        if let Some(rings) = &self.rings {
            Self::drain_rings(rings, &mut c);
        }
        c
    }

    /// Drains every ring into the collector, coalescing records with equal
    /// keys first. Coalescing is exact: counter deltas add associatively,
    /// histogram `record_n(v, a + b)` is defined as bit-identical to
    /// `record_n(v, a); record_n(v, b)`, and gauges (whose series order is
    /// observable) are never merged — they apply immediately, in drain
    /// order. This is what makes the ring a net win: a tick's worth of
    /// per-op records collapses to a handful of registry walks.
    fn drain_rings(rings: &ring::RingSet, c: &mut Collector) {
        // (name, record) pending per key, in first-seen order.
        let mut pending: Vec<(&'static str, ring::HotRecord)> = Vec::new();
        rings.drain(|name, rec| match rec.kind {
            ring::HotKind::Gauge => c.apply_hot(name, rec),
            ring::HotKind::Counter => {
                match pending.iter_mut().find(|(_, p)| {
                    p.kind == ring::HotKind::Counter && p.name == rec.name && p.label == rec.label
                }) {
                    Some((_, p)) => p.value += rec.value,
                    None => pending.push((name, rec)),
                }
            }
            ring::HotKind::Histogram => {
                match pending.iter_mut().find(|(_, p)| {
                    p.kind == ring::HotKind::Histogram && p.name == rec.name && p.value == rec.value
                }) {
                    Some((_, p)) => p.count = p.count.saturating_add(rec.count),
                    None => pending.push((name, rec)),
                }
            }
        });
        for (name, rec) in pending {
            c.apply_hot(name, rec);
        }
    }

    /// Routes one hot-path metric record through the ring; on overflow (or
    /// name-table exhaustion) falls back to drain-then-apply under the
    /// mutex, which preserves order exactly — backpressure, never loss.
    #[inline]
    fn record_hot(
        &self,
        kind: ring::HotKind,
        name: &'static str,
        label: u32,
        value: u64,
        count: u64,
    ) {
        let Some(inner) = &self.inner else { return };
        if let Some(rings) = &self.rings {
            if rings.push(MAIN_SHARD, kind, name, label, value, count) {
                return;
            }
            let mut c = Self::lock(inner);
            Self::drain_rings(rings, &mut c);
            c.apply_hot(
                name,
                ring::HotRecord {
                    kind,
                    name: 0,
                    label,
                    value,
                    count,
                },
            );
            return;
        }
        let mut c = Self::lock(inner);
        c.apply_hot(
            name,
            ring::HotRecord {
                kind,
                name: 0,
                label,
                value,
                count,
            },
        );
    }

    /// Advances the clock and journals one event under a single lock —
    /// the per-tick fast path, byte-identical to [`Telemetry::set_clock`]
    /// followed by [`Telemetry::emit`] but with one acquisition instead
    /// of two.
    pub fn begin_tick(&self, tick: u64, make: impl FnOnce() -> Event) {
        let Some(inner) = &self.inner else { return };
        let mut c = self.lock_settled(inner);
        if tick != c.clock {
            c.clock = tick;
            c.seq = 0;
        }
        let record = EventRecord {
            t: c.clock,
            seq: c.seq,
            event: make(),
        };
        c.seq += 1;
        c.events.push(record);
    }

    /// Applies a pre-coalesced batch of metric records under a single
    /// lock, after draining the rings (so everything pushed earlier still
    /// lands first). This is the tick-boundary flush path: a caller that
    /// aggregated a tick's worth of hot records locally (see the
    /// simulator's per-tick op ledger) hands them over in one acquisition
    /// instead of one ring round-trip per record. State afterwards is
    /// identical to recording each entry individually — counters and
    /// histograms are associative and the registry keys them in sorted
    /// maps, so batch order is unobservable.
    pub fn record_batch(&self, records: impl IntoIterator<Item = MetricRecord>) {
        let Some(inner) = &self.inner else { return };
        let mut c = self.lock_settled(inner);
        for r in records {
            match r {
                MetricRecord::Counter { name, label, delta } => {
                    c.metrics.counter_add(name, label, delta);
                }
                MetricRecord::Histogram { name, value, count } => {
                    c.metrics.histogram_record_n(name, value, count);
                }
            }
        }
    }

    /// Advances the deterministic clock. The simulator calls this once per
    /// tick; every event and metric sample recorded afterwards is stamped
    /// with `tick`. Resets the intra-tick sequence counter.
    pub fn set_clock(&self, tick: u64) {
        let Some(inner) = &self.inner else { return };
        // Drain before moving the clock: pending gauge records belong to
        // the tick they were pushed in.
        let mut c = self.lock_settled(inner);
        if tick != c.clock {
            c.clock = tick;
            c.seq = 0;
        }
    }

    /// Appends one event to the journal, stamped with the current clock.
    /// The closure is only evaluated when the handle is enabled, so call
    /// sites that build strings or vectors stay free on the disabled path.
    pub fn emit(&self, make: impl FnOnce() -> Event) {
        let Some(inner) = &self.inner else { return };
        let mut c = Self::lock(inner);
        let record = EventRecord {
            t: c.clock,
            seq: c.seq,
            event: make(),
        };
        c.seq += 1;
        c.events.push(record);
    }

    /// Opens a named phase span: a `PhaseBegin` event now, and a matching
    /// `PhaseEnd` when the returned guard drops. Spans nest by emission
    /// order within a tick, which is exactly how the Chrome trace exporter
    /// reconstructs them.
    pub fn span(&self, name: &'static str) -> Span {
        self.emit(|| Event::PhaseBegin { name: name.into() });
        Span {
            tel: self.clone(),
            name,
        }
    }

    /// Adds `delta` to the counter `name` (label 0).
    #[inline]
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        self.record_hot(ring::HotKind::Counter, name, 0, delta, 0);
    }

    /// Adds `delta` to the counter `name` for one label (e.g. an MDS rank).
    #[inline]
    pub fn counter_add_labeled(&self, name: &'static str, label: u32, delta: u64) {
        self.record_hot(ring::HotKind::Counter, name, label, delta, 0);
    }

    /// Current value of counter `name` summed over all labels (0 when the
    /// counter was never touched or the handle is disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        self.lock_settled(inner).metrics.counter_total(name)
    }

    /// Records one sample of the gauge `name` for `label` at the current
    /// clock, appending to that gauge's time series.
    #[inline]
    pub fn gauge_set(&self, name: &'static str, label: u32, value: f64) {
        self.record_hot(ring::HotKind::Gauge, name, label, value.to_bits(), 0);
    }

    /// Records `value` into the fixed-bucket histogram `name`.
    #[inline]
    pub fn histogram_record(&self, name: &'static str, value: u64) {
        self.record_hot(ring::HotKind::Histogram, name, 0, value, 1);
    }

    /// Records `value` into the fixed-bucket histogram `name`, `n` times,
    /// identically to `n` sequential [`Telemetry::histogram_record`] calls.
    #[inline]
    pub fn histogram_record_n(&self, name: &'static str, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.record_hot(ring::HotKind::Histogram, name, 0, value, n);
    }

    /// Number of journal events whose [`Event::kind`] equals `kind`.
    /// Used by the invariant checker to reconcile the migration ledger.
    pub fn count_kind(&self, kind: &str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        Self::lock(inner)
            .events
            .iter()
            .filter(|r| r.event.kind() == kind)
            .count() as u64
    }

    /// Copies every journal event recorded at or after index `cursor` and
    /// returns it with the new cursor (the total journal length). This is
    /// the streaming interface for live subscribers (the daemon event
    /// bus): repeated calls with the returned cursor see each event exactly
    /// once, in emission order, without draining the journal — exporters
    /// still see the full run. A disabled handle yields no events and a
    /// zero cursor.
    pub fn events_since(&self, cursor: usize) -> (Vec<EventRecord>, usize) {
        let Some(inner) = &self.inner else {
            return (Vec::new(), 0);
        };
        let c = Self::lock(inner);
        let end = c.events.len();
        if cursor >= end {
            return (Vec::new(), end);
        }
        (c.events[cursor..].to_vec(), end)
    }

    /// The collector's current `(clock, seq)` stamping position. Snapshots
    /// persist this so a restored run keeps stamping from exactly where the
    /// original stopped — `(0, 0)` for a disabled handle.
    pub fn clock_position(&self) -> (u64, u64) {
        let Some(inner) = &self.inner else {
            return (0, 0);
        };
        let c = Self::lock(inner);
        (c.clock, c.seq)
    }

    /// Restores the stamping position saved by
    /// [`Telemetry::clock_position`]. Unlike [`Telemetry::set_clock`] this
    /// sets the intra-tick sequence too, so events emitted right after a
    /// restore continue the original numbering instead of restarting at
    /// `seq = 0`. No-op on a disabled handle.
    pub fn restore_clock_position(&self, clock: u64, seq: u64) {
        let Some(inner) = &self.inner else { return };
        // As in `set_clock`: settle pending records under the old clock.
        let mut c = self.lock_settled(inner);
        c.clock = clock;
        c.seq = seq;
    }

    /// A deep copy of everything collected so far (`None` when disabled).
    pub fn snapshot(&self) -> Option<Snapshot> {
        let inner = self.inner.as_ref()?;
        let c = self.lock_settled(inner);
        Some(Snapshot {
            events: c.events.clone(),
            metrics: c.metrics.clone(),
            last_tick: c.clock,
        })
    }

    /// Exports the three artifact files into `dir` with the stem `label`:
    /// `<label>.events.jsonl`, `<label>.metrics.csv`, `<label>.trace.json`.
    /// Returns the paths written; a disabled handle writes nothing.
    pub fn export(
        &self,
        dir: &std::path::Path,
        label: &str,
    ) -> std::io::Result<Vec<std::path::PathBuf>> {
        match self.snapshot() {
            Some(snap) => export::export_all(&snap, dir, label),
            None => Ok(Vec::new()),
        }
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.is_enabled() {
            "Telemetry(enabled)"
        } else {
            "Telemetry(disabled)"
        })
    }
}

/// Handles compare by enabled-ness only, so configuration structs holding a
/// handle keep a meaningful `PartialEq` (two disabled configs are equal).
impl PartialEq for Telemetry {
    fn eq(&self, other: &Self) -> bool {
        self.is_enabled() == other.is_enabled()
    }
}

/// RAII guard for a phase span: emits `PhaseEnd` when dropped.
pub struct Span {
    tel: Telemetry,
    name: &'static str,
}

impl Drop for Span {
    fn drop(&mut self) {
        let name = self.name;
        self.tel.emit(|| Event::PhaseEnd { name: name.into() });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Overflowing the ring's fixed capacity must spill to the direct
    /// mutex path without dropping or reordering anything: every counter
    /// delta accounted for, histogram totals exact, and the gauge series —
    /// the one hot-path stream whose *order* is observable — monotone in
    /// push order with every sample present, across repeated
    /// overflow/drain cycles.
    #[test]
    fn ring_overflow_backpressure_never_drops_or_reorders() {
        let t = Telemetry::enabled();
        let n = u64::try_from(3 * ring::DEFAULT_RING_CAPACITY + 17).unwrap();
        for i in 0..n {
            t.counter_add("bp.counter", 1);
            t.histogram_record("bp.hist", i % 7);
            #[allow(clippy::cast_precision_loss)]
            t.gauge_set("bp.gauge", 0, i as f64);
        }
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.metrics.counter_get("bp.counter", 0), n);
        let h = snap.metrics.histogram("bp.hist").unwrap();
        assert_eq!(h.count(), n);
        let series: Vec<(u64, f64)> = snap
            .metrics
            .gauges()
            .find(|(n, l, _)| *n == "bp.gauge" && *l == 0)
            .map(|(_, _, s)| s.to_vec())
            .unwrap();
        assert_eq!(
            series.len(),
            usize::try_from(n).unwrap(),
            "no gauge dropped"
        );
        for (i, (tick, v)) in series.iter().enumerate() {
            assert_eq!(*tick, 0);
            #[allow(clippy::cast_precision_loss)]
            let want = i as f64;
            assert_eq!(*v, want, "gauge series out of order at {i}");
        }
        // A second burst after the drain reuses the same rings.
        t.set_clock(1);
        for i in 0..n {
            #[allow(clippy::cast_precision_loss)]
            t.gauge_set("bp.gauge", 0, (n + i) as f64);
        }
        let snap2 = t.snapshot().unwrap();
        let series2: Vec<(u64, f64)> = snap2
            .metrics
            .gauges()
            .find(|(n, l, _)| *n == "bp.gauge" && *l == 0)
            .map(|(_, _, s)| s.to_vec())
            .unwrap();
        assert_eq!(series2.len(), 2 * usize::try_from(n).unwrap());
        assert!(series2[usize::try_from(n).unwrap()..]
            .iter()
            .all(|(tick, _)| *tick == 1));
    }

    /// The ring path must be observationally identical to the pre-ring
    /// direct path: a handle whose rings are disabled (forcing every call
    /// through the mutex fallback) collects exactly the same registry.
    #[test]
    fn ring_and_direct_paths_collect_identical_registries() {
        let ringed = Telemetry::enabled();
        let direct = Telemetry {
            inner: Some(Arc::new(Mutex::new(Collector::default()))),
            rings: None,
        };
        for t in [&ringed, &direct] {
            for tick in 0..5u64 {
                t.set_clock(tick);
                for i in 0..50u64 {
                    t.counter_add_labeled("eq.ops", u32::try_from(i % 3).unwrap(), 1);
                    t.histogram_record("eq.stall", i % 4);
                    t.gauge_set("eq.load", 1, 0.5);
                }
                t.histogram_record_n("eq.stall", 2, 9);
            }
        }
        let a = ringed.snapshot().unwrap();
        let b = direct.snapshot().unwrap();
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.last_tick, b.last_tick);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        t.set_clock(5);
        t.emit(|| Event::TickStart);
        t.counter_add("x", 3);
        t.gauge_set("g", 0, 1.0);
        t.histogram_record("h", 9);
        assert!(!t.is_enabled());
        assert_eq!(t.counter_value("x"), 0);
        assert_eq!(t.count_kind("tick_start"), 0);
        assert!(t.snapshot().is_none());
    }

    #[test]
    fn events_are_stamped_with_clock_and_sequence() {
        let t = Telemetry::enabled();
        t.emit(|| Event::TickStart);
        t.set_clock(7);
        t.emit(|| Event::MdsAdd { rank: 3 });
        t.emit(|| Event::TickStart);
        let snap = t.snapshot().unwrap();
        assert_eq!(snap.events.len(), 3);
        assert_eq!((snap.events[0].t, snap.events[0].seq), (0, 0));
        assert_eq!((snap.events[1].t, snap.events[1].seq), (7, 0));
        assert_eq!((snap.events[2].t, snap.events[2].seq), (7, 1));
        assert_eq!(snap.last_tick, 7);
    }

    #[test]
    fn clones_share_one_collector() {
        let a = Telemetry::enabled();
        let b = a.clone();
        a.counter_add("shared", 2);
        b.counter_add("shared", 5);
        assert_eq!(a.counter_value("shared"), 7);
    }

    #[test]
    fn spans_nest_by_emission_order() {
        let t = Telemetry::enabled();
        {
            let _outer = t.span("epoch");
            let _inner = t.span("select");
        }
        let snap = t.snapshot().unwrap();
        let kinds: Vec<String> = snap
            .events
            .iter()
            .map(|r| format!("{}:{}", r.event.kind(), r.seq))
            .collect();
        assert_eq!(
            kinds,
            vec![
                "phase_begin:0",
                "phase_begin:1",
                "phase_end:2",
                "phase_end:3"
            ]
        );
    }

    #[test]
    fn count_kind_filters_the_journal() {
        let t = Telemetry::enabled();
        t.emit(|| Event::MigrationStart {
            from: 0,
            to: 1,
            dir: 2,
            frag_value: 0,
            frag_bits: 0,
            inodes: 10,
        });
        t.emit(|| Event::TickStart);
        assert_eq!(t.count_kind("migration_start"), 1);
        assert_eq!(t.count_kind("migration_commit"), 0);
    }

    #[test]
    fn events_since_streams_each_event_exactly_once() {
        let t = Telemetry::enabled();
        t.emit(|| Event::TickStart);
        t.emit(|| Event::MdsAdd { rank: 1 });
        let (batch, cur) = t.events_since(0);
        assert_eq!(batch.len(), 2);
        assert_eq!(cur, 2);
        let (empty, cur2) = t.events_since(cur);
        assert!(empty.is_empty());
        assert_eq!(cur2, 2);
        t.emit(|| Event::TickStart);
        let (tail, cur3) = t.events_since(cur2);
        assert_eq!(tail.len(), 1);
        assert_eq!(cur3, 3);
        // Streaming never drains: the snapshot still holds the full run.
        assert_eq!(t.snapshot().unwrap().events.len(), 3);
        // Disabled handles stream nothing.
        assert_eq!(Telemetry::disabled().events_since(0), (Vec::new(), 0));
    }

    #[test]
    fn clock_position_round_trips_mid_tick() {
        let t = Telemetry::enabled();
        t.set_clock(9);
        t.emit(|| Event::TickStart);
        t.emit(|| Event::MdsAdd { rank: 0 });
        assert_eq!(t.clock_position(), (9, 2));
        // A fresh handle restored to that position continues the numbering.
        let fresh = Telemetry::enabled();
        fresh.restore_clock_position(9, 2);
        fresh.emit(|| Event::TickStart);
        let snap = fresh.snapshot().unwrap();
        assert_eq!((snap.events[0].t, snap.events[0].seq), (9, 2));
        // set_clock to the *same* tick must not reset the restored seq.
        let fresh2 = Telemetry::enabled();
        fresh2.restore_clock_position(9, 2);
        fresh2.set_clock(9);
        fresh2.emit(|| Event::TickStart);
        let snap2 = fresh2.snapshot().unwrap();
        assert_eq!((snap2.events[0].t, snap2.events[0].seq), (9, 2));
        // Disabled handles report the origin and ignore restores.
        let off = Telemetry::disabled();
        off.restore_clock_position(4, 4);
        assert_eq!(off.clock_position(), (0, 0));
    }

    #[test]
    fn equality_is_by_enabledness() {
        assert_eq!(Telemetry::disabled(), Telemetry::disabled());
        assert_eq!(Telemetry::enabled(), Telemetry::enabled());
        assert_ne!(Telemetry::enabled(), Telemetry::disabled());
    }
}
