//! Counters, gauges, and fixed-bucket histograms.
//!
//! All metric storage is keyed by `(&'static str name, u32 label)` inside
//! `BTreeMap`s, so iteration order — and therefore every export — is
//! deterministic regardless of emission order. The label is a small integer
//! dimension, in practice an MDS rank; single-valued metrics use label 0.
//!
//! Histograms use power-of-two buckets ([`FixedHistogram`]): cheap to
//! record into (a leading-zeros computation, no allocation after the first
//! touch) and good enough to read p50/p95/p99 off, which is what the
//! latency-style distributions here need.

use std::collections::BTreeMap;

/// Number of buckets in a [`FixedHistogram`]: bucket 0 holds zeros, bucket
/// `i >= 1` holds values in `[2^(i-1), 2^i)`, and the last bucket absorbs
/// everything at or above `2^(BUCKETS-2)`.
pub const BUCKETS: usize = 32;

/// A fixed-size power-of-two-bucket histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq)]
pub struct FixedHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for FixedHistogram {
    fn default() -> Self {
        FixedHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl FixedHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value falls into.
    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            let idx = 64 - value.leading_zeros() as usize;
            idx.min(BUCKETS - 1)
        }
    }

    /// The inclusive upper bound of values a bucket can hold, used as the
    /// reported quantile value for samples landing in it.
    fn bucket_upper(idx: usize) -> u64 {
        if idx == 0 {
            0
        } else if idx >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << idx) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Records the same sample `n` times, identically to `n` sequential
    /// [`FixedHistogram::record`] calls (all state is integer counters).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(value)] += n;
        self.count += n;
        // `n` sequential saturating adds equal min(sum + n*value, MAX) in
        // unbounded arithmetic: exact until the first saturation, pinned at
        // MAX after. u128 holds the unbounded value.
        let total = self.sum as u128 + value as u128 * n as u128;
        self.sum = u64::try_from(total).unwrap_or(u64::MAX);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The upper bound of the bucket holding the `q`-quantile sample
    /// (`q` in `[0, 1]`). Returns 0 for an empty histogram. The true `max`
    /// caps the answer so a single-bucket distribution reads exactly.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; ceil keeps q=1.0 at count.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &FixedHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// Deterministic storage for all three metric kinds.
///
/// Counters are monotonic cumulative totals; gauges are `(tick, value)`
/// time series sampled by the emitter; histograms aggregate `u64` samples.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<(&'static str, u32), u64>,
    gauges: BTreeMap<(&'static str, u32), Vec<(u64, f64)>>,
    histograms: BTreeMap<&'static str, FixedHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `(name, label)`.
    pub fn counter_add(&mut self, name: &'static str, label: u32, delta: u64) {
        *self.counters.entry((name, label)).or_insert(0) += delta;
    }

    /// Current value of one labelled counter (0 when never touched).
    pub fn counter_get(&self, name: &str, label: u32) -> u64 {
        self.counters
            .iter()
            .find(|((n, l), _)| *n == name && *l == label)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Sum of a counter across all labels.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Appends one `(tick, value)` sample to the gauge `(name, label)`.
    pub fn gauge_set(&mut self, name: &'static str, label: u32, tick: u64, value: f64) {
        self.gauges
            .entry((name, label))
            .or_default()
            .push((tick, value));
    }

    /// Records `value` into the histogram `name`.
    pub fn histogram_record(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// Records `value` into the histogram `name`, `n` times.
    pub fn histogram_record_n(&mut self, name: &'static str, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.histograms.entry(name).or_default().record_n(value, n);
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&FixedHistogram> {
        self.histograms
            .iter()
            .find(|(n, _)| **n == name)
            .map(|(_, h)| h)
    }

    /// All counters in deterministic `(name, label)` order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u32, u64)> + '_ {
        self.counters.iter().map(|(&(n, l), &v)| (n, l, v))
    }

    /// All gauge series in deterministic `(name, label)` order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u32, &[(u64, f64)])> + '_ {
        self.gauges.iter().map(|(&(n, l), v)| (n, l, v.as_slice()))
    }

    /// All histograms in deterministic name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &FixedHistogram)> + '_ {
        self.histograms.iter().map(|(&n, h)| (n, h))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(FixedHistogram::bucket_of(0), 0);
        assert_eq!(FixedHistogram::bucket_of(1), 1);
        assert_eq!(FixedHistogram::bucket_of(2), 2);
        assert_eq!(FixedHistogram::bucket_of(3), 2);
        assert_eq!(FixedHistogram::bucket_of(4), 3);
        assert_eq!(FixedHistogram::bucket_of(1023), 10);
        assert_eq!(FixedHistogram::bucket_of(1024), 11);
        assert_eq!(FixedHistogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_of_uniform_samples() {
        let mut h = FixedHistogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 4950);
        assert_eq!(h.max(), 99);
        // p50 of 0..100 lands in bucket [32,64) → upper bound 63.
        assert_eq!(h.p50(), 63);
        // p95 and p99 land in the top occupied bucket, capped by max.
        assert_eq!(h.p95(), 99);
        assert_eq!(h.p99(), 99);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = FixedHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert!((h.mean() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn all_zero_samples_stay_in_bucket_zero() {
        let mut h = FixedHistogram::new();
        for _ in 0..10 {
            h.record(0);
        }
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = FixedHistogram::new();
        let mut b = FixedHistogram::new();
        a.record(5);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.sum(), 1005);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn counters_aggregate_by_label() {
        let mut m = MetricsRegistry::new();
        m.counter_add("ops", 0, 3);
        m.counter_add("ops", 1, 4);
        m.counter_add("ops", 0, 1);
        assert_eq!(m.counter_get("ops", 0), 4);
        assert_eq!(m.counter_get("ops", 1), 4);
        assert_eq!(m.counter_get("ops", 9), 0);
        assert_eq!(m.counter_total("ops"), 8);
        assert_eq!(m.counter_total("other"), 0);
    }

    #[test]
    fn gauges_keep_a_time_series_per_label() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("util", 1, 10, 0.5);
        m.gauge_set("util", 0, 10, 0.25);
        m.gauge_set("util", 1, 20, 0.75);
        let series: Vec<_> = m.gauges().collect();
        // BTreeMap order: label 0 before label 1.
        assert_eq!(series[0], ("util", 0, &[(10u64, 0.25f64)][..]));
        assert_eq!(series[1], ("util", 1, &[(10, 0.5), (20, 0.75)][..]));
    }

    #[test]
    fn iteration_order_is_independent_of_insertion_order() {
        let mut a = MetricsRegistry::new();
        a.counter_add("zeta", 0, 1);
        a.counter_add("alpha", 0, 1);
        let mut b = MetricsRegistry::new();
        b.counter_add("alpha", 0, 1);
        b.counter_add("zeta", 0, 1);
        let ka: Vec<_> = a.counters().map(|(n, l, _)| (n, l)).collect();
        let kb: Vec<_> = b.counters().map(|(n, l, _)| (n, l)).collect();
        assert_eq!(ka, kb);
        assert_eq!(ka, vec![("alpha", 0), ("zeta", 0)]);
    }
}
