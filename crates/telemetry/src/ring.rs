//! Lock-free SPSC rings for the hot-path metric records.
//!
//! Every per-op telemetry call used to take the collector mutex and walk a
//! string-keyed registry map — twice per served op — which is where the
//! enabled/disabled gap in the `telemetry_on`/`telemetry_off` benches came
//! from. The hot-path records are plain data (a kind, an interned name, a
//! label, a value), so they now go through a fixed-capacity single-producer
//! single-consumer ring per shard, built from `std` atomics only: a push is
//! an intern-table probe plus four atomic operations, no lock, no map walk.
//!
//! Rings are drained under the collector mutex at every tick boundary and
//! before every read of collector state, **in shard order**, so the records
//! reach the registry in a deterministic order no matter how producers were
//! scheduled — journals and metric exports stay byte-identical at any
//! `--jobs` width. Within one shard the ring is FIFO, so a single-threaded
//! producer observes exactly the legacy append order.
//!
//! Overflow is backpressure, never loss: when a ring is full (or the name
//! table is exhausted), the producer itself takes the mutex, drains every
//! ring, and applies its record directly — strictly after everything it
//! pushed earlier, so nothing is dropped or reordered.
//!
//! # Single-producer contract
//!
//! Each shard's ring accepts pushes from one thread at a time. In the
//! simulator only the serial engine thread records hot-path metrics (the
//! parallel resolve phase is read-only), so shard 0 is sufficient today;
//! the multi-shard drain order is what keeps the door open for sharded
//! producers without a determinism regression.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default per-shard capacity, in records. At two records per served op a
/// tick's worth of the bench cell fits with lots of slack; overflow is
/// handled (backpressure), so this is a throughput knob, not a correctness
/// bound.
pub(crate) const DEFAULT_RING_CAPACITY: usize = 4096;

/// Atomic words per record slot: header, value, count.
const WORDS_PER_SLOT: usize = 3;

/// What a [`HotRecord`] does to the registry when applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum HotKind {
    /// `counter_add(name, label, value)`.
    Counter,
    /// `histogram_record_n(name, value, count)`.
    Histogram,
    /// `gauge_set(name, label, f64::from_bits(value))` at the clock in
    /// effect when the record is drained — drains run before every clock
    /// change, so that is the clock in effect when it was pushed.
    Gauge,
}

impl HotKind {
    fn tag(self) -> u64 {
        match self {
            HotKind::Counter => 0,
            HotKind::Histogram => 1,
            HotKind::Gauge => 2,
        }
    }

    fn from_tag(tag: u64) -> HotKind {
        match tag {
            1 => HotKind::Histogram,
            2 => HotKind::Gauge,
            _ => HotKind::Counter,
        }
    }
}

/// One hot-path metric record, packable into three `u64` words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct HotRecord {
    pub kind: HotKind,
    /// Interned name id (index into the [`NameTable`]).
    pub name: u16,
    pub label: u32,
    /// Counter delta / histogram sample / gauge `f64` bits.
    pub value: u64,
    /// Histogram repeat count; unused otherwise.
    pub count: u64,
}

impl HotRecord {
    #[inline]
    fn header(&self) -> u64 {
        self.kind.tag() | (u64::from(self.name) << 8) | (u64::from(self.label) << 32)
    }

    fn from_words(header: u64, value: u64, count: u64) -> HotRecord {
        HotRecord {
            kind: HotKind::from_tag(header & 0xff),
            name: u16::try_from((header >> 8) & 0xffff).unwrap_or(u16::MAX),
            label: u32::try_from(header >> 32).unwrap_or(u32::MAX),
            value,
            count,
        }
    }
}

/// A fixed-capacity Lamport SPSC ring of [`HotRecord`]s.
///
/// `tail` is owned by the producer, `head` by the consumer; the
/// release/acquire pairs on them order the slot-word accesses, so this is
/// race-free without any `unsafe`. Consumers are additionally serialized
/// by the collector mutex at the call sites.
pub(crate) struct SpscRing {
    slots: Box<[AtomicU64]>,
    head: AtomicUsize,
    tail: AtomicUsize,
    /// `capacity - 1`; capacity is rounded up to a power of two so slot
    /// indexing is a mask, not a division — the division was measurable
    /// in the per-op push cost.
    mask: usize,
    /// Producer-private estimate of `head`. The producer only reloads the
    /// real (consumer-written, cache-line-bouncing) `head` when the ring
    /// *looks* full against the estimate, so the common-case push touches
    /// no line the consumer writes. Only the producer accesses this, with
    /// relaxed ordering — it is a cache, never a synchronization point.
    head_cache: AtomicUsize,
    /// Consumer-private estimate of `tail`, symmetrically.
    tail_cache: AtomicUsize,
}

impl SpscRing {
    pub fn new(cap: usize) -> SpscRing {
        let cap = cap.max(1).next_power_of_two();
        let mut slots = Vec::new();
        slots.resize_with(cap * WORDS_PER_SLOT, || AtomicU64::new(0));
        SpscRing {
            slots: slots.into_boxed_slice(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            mask: cap - 1,
            head_cache: AtomicUsize::new(0),
            tail_cache: AtomicUsize::new(0),
        }
    }

    /// Appends one record; false when full (the caller falls back to the
    /// direct mutex path — backpressure, not loss).
    #[inline]
    pub fn push(&self, rec: HotRecord) -> bool {
        let cap = self.mask + 1;
        let tail = self.tail.load(Ordering::Relaxed);
        let mut head = self.head_cache.load(Ordering::Relaxed);
        if tail.wrapping_sub(head) >= cap {
            head = self.head.load(Ordering::Acquire);
            self.head_cache.store(head, Ordering::Relaxed);
            if tail.wrapping_sub(head) >= cap {
                return false;
            }
        }
        let base = (tail & self.mask) * WORDS_PER_SLOT;
        self.slots[base].store(rec.header(), Ordering::Relaxed);
        self.slots[base + 1].store(rec.value, Ordering::Relaxed);
        self.slots[base + 2].store(rec.count, Ordering::Relaxed);
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// Removes the oldest record, FIFO; `None` when empty.
    #[inline]
    pub fn pop(&self) -> Option<HotRecord> {
        let head = self.head.load(Ordering::Relaxed);
        let mut tail = self.tail_cache.load(Ordering::Relaxed);
        if head == tail {
            tail = self.tail.load(Ordering::Acquire);
            self.tail_cache.store(tail, Ordering::Relaxed);
            if head == tail {
                return None;
            }
        }
        let base = (head & self.mask) * WORDS_PER_SLOT;
        let header = self.slots[base].load(Ordering::Relaxed);
        let value = self.slots[base + 1].load(Ordering::Relaxed);
        let count = self.slots[base + 2].load(Ordering::Relaxed);
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(HotRecord::from_words(header, value, count))
    }
}

/// Maximum distinct metric names the intern table holds. The workspace
/// uses about a dozen; a name beyond the cap falls back to the direct
/// mutex path (correct, just slower).
const MAX_NAMES: usize = 64;

/// Lock-free append-only intern table for `&'static str` metric names.
///
/// Lookup is a linear probe with a pointer-equality fast path — metric
/// names are string literals, so the same call site always presents the
/// same pointer and the common case is a handful of pointer compares.
pub(crate) struct NameTable {
    slots: [OnceLock<&'static str>; MAX_NAMES],
}

fn str_eq_fast(a: &'static str, b: &'static str) -> bool {
    (std::ptr::eq(a.as_ptr(), b.as_ptr()) && a.len() == b.len()) || a == b
}

impl NameTable {
    pub fn new() -> NameTable {
        NameTable {
            slots: [const { OnceLock::new() }; MAX_NAMES],
        }
    }

    /// The id for `name`, registering it on first sight. `None` when the
    /// table is full.
    #[inline]
    pub fn intern(&self, name: &'static str) -> Option<u16> {
        for (i, slot) in self.slots.iter().enumerate() {
            match slot.get() {
                Some(s) if str_eq_fast(s, name) => return u16::try_from(i).ok(),
                Some(_) => continue,
                None => {
                    // Either we win the slot or someone else just did;
                    // re-check what landed there.
                    let _ = slot.set(name);
                    match slot.get() {
                        Some(s) if str_eq_fast(s, name) => return u16::try_from(i).ok(),
                        _ => continue,
                    }
                }
            }
        }
        None
    }

    /// Reverse lookup for the drain path.
    pub fn name_of(&self, id: u16) -> Option<&'static str> {
        self.slots
            .get(usize::from(id))
            .and_then(|s| s.get().copied())
    }
}

/// The per-handle ring state: one SPSC ring per shard plus the shared
/// name intern table.
pub(crate) struct RingSet {
    rings: Vec<SpscRing>,
    names: NameTable,
}

impl RingSet {
    pub fn new(shards: usize, cap: usize) -> RingSet {
        let shards = shards.max(1);
        RingSet {
            rings: (0..shards).map(|_| SpscRing::new(cap)).collect(),
            names: NameTable::new(),
        }
    }

    /// Pushes a metric record onto shard `shard`'s ring. False when the
    /// ring is full, the shard does not exist, or the name table is
    /// exhausted — the caller must then apply the record directly (after
    /// draining, to preserve order).
    #[inline]
    pub fn push(
        &self,
        shard: usize,
        kind: HotKind,
        name: &'static str,
        label: u32,
        value: u64,
        count: u64,
    ) -> bool {
        let Some(id) = self.names.intern(name) else {
            return false;
        };
        let Some(ring) = self.rings.get(shard) else {
            return false;
        };
        ring.push(HotRecord {
            kind,
            name: id,
            label,
            value,
            count,
        })
    }

    /// Drains every ring **in shard order**, handing each record (with its
    /// name resolved) to `apply`. Within a shard, records come out in push
    /// order; across shards, shard index decides — deterministic
    /// regardless of producer scheduling.
    pub fn drain(&self, mut apply: impl FnMut(&'static str, HotRecord)) {
        for ring in &self.rings {
            while let Some(rec) = ring.pop() {
                if let Some(name) = self.names.name_of(rec.name) {
                    apply(name, rec);
                }
            }
        }
    }

    /// Number of shards.
    #[cfg(test)]
    pub fn shards(&self) -> usize {
        self.rings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lunule_util::propcheck;

    #[test]
    fn ring_is_fifo_and_reports_full() {
        let r = SpscRing::new(4);
        for i in 0..4u64 {
            assert!(r.push(HotRecord {
                kind: HotKind::Counter,
                name: 1,
                label: 0,
                value: i,
                count: 0,
            }));
        }
        assert!(
            !r.push(HotRecord {
                kind: HotKind::Counter,
                name: 1,
                label: 0,
                value: 99,
                count: 0,
            }),
            "full ring must refuse, not overwrite"
        );
        for i in 0..4u64 {
            assert_eq!(r.pop().map(|rec| rec.value), Some(i));
        }
        assert_eq!(r.pop(), None);
        // Wrap-around: indices keep climbing past the capacity.
        for round in 0..5u64 {
            assert!(r.push(HotRecord {
                kind: HotKind::Gauge,
                name: 2,
                label: 7,
                value: round,
                count: 0,
            }));
            assert_eq!(r.pop().map(|rec| rec.value), Some(round));
        }
    }

    #[test]
    fn record_words_round_trip() {
        let recs = [
            HotRecord {
                kind: HotKind::Counter,
                name: 0,
                label: 0,
                value: 0,
                count: 0,
            },
            HotRecord {
                kind: HotKind::Histogram,
                name: u16::MAX,
                label: u32::MAX,
                value: u64::MAX,
                count: 12,
            },
            HotRecord {
                kind: HotKind::Gauge,
                name: 7,
                label: 3,
                value: f64::to_bits(-1.5),
                count: 0,
            },
        ];
        for rec in recs {
            let rt = HotRecord::from_words(rec.header(), rec.value, rec.count);
            assert_eq!(rec, rt);
        }
    }

    #[test]
    fn name_table_interns_and_saturates() {
        let t = NameTable::new();
        let a = t.intern("alpha").unwrap();
        let b = t.intern("beta").unwrap();
        assert_ne!(a, b);
        assert_eq!(t.intern("alpha"), Some(a), "idempotent");
        assert_eq!(t.name_of(a), Some("alpha"));
        assert_eq!(t.name_of(b), Some("beta"));
        assert_eq!(t.name_of(63), None);
    }

    /// The satellite law: pushing an arbitrary interleaving of records
    /// onto per-shard rings and draining in shard order yields exactly
    /// the order a legacy serial engine would have appended — records
    /// sorted by (shard, intra-shard sequence), stably.
    #[test]
    fn prop_drain_in_shard_order_equals_legacy_append_order() {
        propcheck::run(128, |rng| {
            let shards = 1 + rng.gen_range(0..4);
            let set = RingSet::new(shards, DEFAULT_RING_CAPACITY);
            assert_eq!(set.shards(), shards);
            let n = rng.gen_range(0..200);
            // The legacy engine walks shards in order within a tick, so
            // its append order is the (shard, seq) sort of whatever the
            // producers pushed. Build that reference order from a random
            // interleaving — the scheduling the rings must erase.
            let mut per_shard_seq = vec![0u64; shards];
            let mut pushed: Vec<(usize, u64)> = Vec::new(); // (shard, seq)
            for _ in 0..n {
                let shard = rng.gen_range(0..shards);
                let seq = per_shard_seq[shard];
                per_shard_seq[shard] += 1;
                assert!(set.push(
                    shard,
                    HotKind::Counter,
                    "law.counter",
                    lunule_util::convert::usize_to_u32(shard),
                    seq,
                    0,
                ));
                pushed.push((shard, seq));
            }
            let mut legacy = pushed.clone();
            legacy.sort_by_key(|&(shard, seq)| (shard, seq));
            let mut drained: Vec<(usize, u64)> = Vec::new();
            set.drain(|name, rec| {
                assert_eq!(name, "law.counter");
                drained.push((lunule_util::convert::u32_to_usize(rec.label), rec.value));
            });
            assert_eq!(drained, legacy, "shard-order drain == legacy append order");
        });
    }
}
