//! A minimal binary codec for snapshot sections.
//!
//! Every crate that owns private simulation state (namespace arenas,
//! balancer windows, migration queues…) encodes it with this codec so the
//! snapshot container (`lunule-snapshot`) can checksum and lay out the
//! bytes without knowing what is inside them. The format is deliberately
//! boring: little-endian fixed-width integers, `f64` as raw IEEE-754 bits
//! (so restored floats are *bit*-identical, not merely approximately
//! equal), length-prefixed strings and sequences. There is no
//! self-description — reader and writer must agree on the field order,
//! which the snapshot format version pins.

/// Decoding failure: the bytes did not match the expected shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes remained than the next field needs.
    Truncated {
        /// What was being decoded when the input ran dry.
        what: &'static str,
    },
    /// A tag or invariant check failed (e.g. a boolean byte that is
    /// neither 0 nor 1, or a variant tag out of range).
    Invalid {
        /// What was being decoded when the value made no sense.
        what: &'static str,
    },
    /// Bytes were left over after the last expected field.
    TrailingBytes {
        /// How many bytes remained unread.
        remaining: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { what } => {
                write!(f, "truncated input while decoding {what}")
            }
            CodecError::Invalid { what } => write!(f, "invalid value while decoding {what}"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after the last field")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends fields to a growing byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(crate::convert::usize_to_u64(v));
    }

    /// Writes an `f64` as its raw bit pattern (bit-exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Writes a boolean as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Writes a length-prefixed raw byte slice.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes an `Option` as a presence byte followed by the value.
    pub fn put_option<T>(&mut self, v: &Option<T>, mut put: impl FnMut(&mut Self, &T)) {
        match v {
            Some(inner) => {
                self.put_bool(true);
                put(self, inner);
            }
            None => self.put_bool(false),
        }
    }

    /// Writes a length-prefixed sequence.
    pub fn put_seq<T>(&mut self, items: &[T], mut put: impl FnMut(&mut Self, &T)) {
        self.put_usize(items.len());
        for item in items {
            put(self, item);
        }
    }
}

/// Reads fields back out of a byte slice, tracking position.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte has been consumed — call after the last
    /// field so a version skew that *appends* fields is still caught.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { what });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self, what: &'static str) -> Result<u16, CodecError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `usize` (stored as `u64`), rejecting values that do not fit
    /// the platform word.
    pub fn get_usize(&mut self, what: &'static str) -> Result<usize, CodecError> {
        let v = self.get_u64(what)?;
        usize::try_from(v).map_err(|_| CodecError::Invalid { what })
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn get_f64(&mut self, what: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64(what)?))
    }

    /// Reads a boolean, rejecting bytes other than 0/1.
    pub fn get_bool(&mut self, what: &'static str) -> Result<bool, CodecError> {
        match self.get_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid { what }),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, what: &'static str) -> Result<String, CodecError> {
        let len = self.get_usize(what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid { what })
    }

    /// Reads a length-prefixed raw byte vector.
    pub fn get_bytes(&mut self, what: &'static str) -> Result<Vec<u8>, CodecError> {
        let len = self.get_usize(what)?;
        Ok(self.take(len, what)?.to_vec())
    }

    /// Reads an `Option` written by [`Encoder::put_option`].
    pub fn get_option<T>(
        &mut self,
        what: &'static str,
        mut get: impl FnMut(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Option<T>, CodecError> {
        if self.get_bool(what)? {
            Ok(Some(get(self)?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed sequence written by [`Encoder::put_seq`].
    /// The length is sanity-bounded against the remaining input so a
    /// corrupted prefix cannot trigger a giant allocation.
    pub fn get_seq<T>(
        &mut self,
        what: &'static str,
        mut get: impl FnMut(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Vec<T>, CodecError> {
        let len = self.get_usize(what)?;
        // Every element costs at least one byte on the wire.
        if len > self.remaining() {
            return Err(CodecError::Invalid { what });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(get(self)?);
        }
        Ok(out)
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `bytes` — the per-section
/// checksum of the snapshot container.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a 64-bit hash — the seed/config digest of the snapshot header.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u16(300);
        e.put_u32(70_000);
        e.put_u64(u64::MAX - 1);
        e.put_usize(123_456);
        e.put_f64(-0.1);
        e.put_bool(true);
        e.put_bool(false);
        e.put_str("héllo");
        e.put_bytes(&[1, 2, 3]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u8("a").unwrap(), 7);
        assert_eq!(d.get_u16("b").unwrap(), 300);
        assert_eq!(d.get_u32("c").unwrap(), 70_000);
        assert_eq!(d.get_u64("d").unwrap(), u64::MAX - 1);
        assert_eq!(d.get_usize("e").unwrap(), 123_456);
        assert_eq!(d.get_f64("f").unwrap().to_bits(), (-0.1f64).to_bits());
        assert!(d.get_bool("g").unwrap());
        assert!(!d.get_bool("h").unwrap());
        assert_eq!(d.get_str("i").unwrap(), "héllo");
        assert_eq!(d.get_bytes("j").unwrap(), vec![1, 2, 3]);
        d.finish().unwrap();
    }

    #[test]
    fn options_and_sequences_round_trip() {
        let mut e = Encoder::new();
        e.put_option(&Some(9u64), |e, v| e.put_u64(*v));
        e.put_option(&None::<u64>, |e, v| e.put_u64(*v));
        e.put_seq(&[1.5f64, -2.5, 0.0], |e, v| e.put_f64(*v));
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_option("a", |d| d.get_u64("a")).unwrap(), Some(9));
        assert_eq!(d.get_option("b", |d| d.get_u64("b")).unwrap(), None);
        assert_eq!(
            d.get_seq("c", |d| d.get_f64("c")).unwrap(),
            vec![1.5, -2.5, 0.0]
        );
        d.finish().unwrap();
    }

    #[test]
    fn truncation_and_garbage_are_typed_errors() {
        let mut e = Encoder::new();
        e.put_u64(1);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes[..4]);
        assert!(matches!(
            d.get_u64("x"),
            Err(CodecError::Truncated { what: "x" })
        ));
        let mut d = Decoder::new(&[7]);
        assert!(matches!(
            d.get_bool("flag"),
            Err(CodecError::Invalid { .. })
        ));
        // A corrupted sequence length larger than the input is rejected
        // before any allocation happens.
        let mut e = Encoder::new();
        e.put_u64(u64::MAX);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(d.get_seq("seq", |d| d.get_u8("seq")).is_err());
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut d = Decoder::new(&[1, 2]);
        let _ = d.get_u8("x").unwrap();
        assert_eq!(d.finish(), Err(CodecError::TrailingBytes { remaining: 1 }));
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        // A single flipped bit changes the checksum.
        assert_ne!(crc32(&[0b0000_0001]), crc32(&[0b0000_0011]));
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_ne!(fnv1a64(b"seed=1"), fnv1a64(b"seed=2"));
        assert_eq!(fnv1a64(b"abc"), fnv1a64(b"abc"));
    }

    #[test]
    fn rng_state_round_trips_through_codec() {
        let mut rng = crate::DetRng::seed_from_u64(99);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut e = Encoder::new();
        for w in rng.state() {
            e.put_u64(w);
        }
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = d.get_u64("rng").unwrap();
        }
        let mut restored = crate::DetRng::from_state(s);
        assert_eq!(restored.next_u64(), rng.next_u64());
    }
}
