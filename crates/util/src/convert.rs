//! Named, total numeric conversions for the workspace.
//!
//! The cast-safety lint (`cargo run -p xtask -- analyze`) bans raw numeric
//! `as` casts in hot-path crates because they silently truncate, wrap, or
//! round. Call sites use these helpers (or `From`/`try_from`) instead, so
//! every conversion's contract is named at the call site and the handful
//! of underlying `as` casts are waived once, here, with their proofs.
//!
//! All helpers compile to the same machine code as the raw cast they wrap:
//! they exist to document intent, not to change semantics. The
//! float-bound helpers use Rust's saturating `as` semantics (out-of-range
//! saturates, NaN becomes zero), which is already deterministic.
//!
//! Supported targets are 64-bit (`usize` == `u64` in width); the
//! `usize`/`u64` round trips rely on that and say so.

/// `usize` → `u64`, exact on the supported 64-bit targets.
#[inline]
#[must_use]
pub fn usize_to_u64(n: usize) -> u64 {
    n as u64 // as-ok: usize is 64-bit on supported targets; widening
}

/// `u64` → `usize`, exact on the supported 64-bit targets (saturates on a
/// hypothetical 32-bit port rather than wrapping).
#[inline]
#[must_use]
pub fn u64_to_usize(n: u64) -> usize {
    usize::try_from(n).unwrap_or(usize::MAX)
}

/// `usize` → `u32` saturating: rank indices and cluster sizes stay far
/// below `u32::MAX`, so the saturation path is dead code in practice.
#[inline]
#[must_use]
pub fn usize_to_u32(n: usize) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

/// `u32` → `usize`, always exact (no `From` impl exists because `usize`
/// may be 16-bit on exotic targets; ours are 64-bit).
#[inline]
#[must_use]
pub fn u32_to_usize(n: u32) -> usize {
    n as usize // as-ok: usize is at least 32-bit on supported targets
}

/// `usize` → `f64`, exact for values up to 2^53 (namespace sizes, op
/// counts and tick counts all sit far below that).
#[inline]
#[must_use]
pub fn usize_to_f64(n: usize) -> f64 {
    n as f64 // as-ok: exact below 2^53; counts never reach that
}

/// `u64` → `f64`, exact for values up to 2^53 (see [`usize_to_f64`]).
#[inline]
#[must_use]
pub fn u64_to_f64(n: u64) -> f64 {
    n as f64 // as-ok: exact below 2^53; counts never reach that
}

/// `f64` → `u64` with Rust's saturating cast semantics: truncates toward
/// zero, negative and NaN become 0, overflow saturates to `u64::MAX`.
#[inline]
#[must_use]
pub fn f64_to_u64(x: f64) -> u64 {
    x as u64 // as-ok: saturating float-to-int cast is the intent here
}

/// `f64` → `usize` with Rust's saturating cast semantics (see
/// [`f64_to_u64`]).
#[inline]
#[must_use]
pub fn f64_to_usize(x: f64) -> usize {
    x as usize // as-ok: saturating float-to-int cast is the intent here
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widenings_are_exact() {
        assert_eq!(usize_to_u64(usize::MAX), u64::MAX);
        assert_eq!(u64_to_usize(u64::MAX), usize::MAX);
        assert_eq!(u32_to_usize(u32::MAX), 4_294_967_295);
        assert_eq!(usize_to_u32(7), 7);
        assert_eq!(usize_to_f64(1 << 53), 9_007_199_254_740_992.0);
        assert_eq!(u64_to_f64(42), 42.0);
    }

    #[test]
    fn float_to_int_saturates() {
        assert_eq!(f64_to_u64(3.9), 3);
        assert_eq!(f64_to_u64(-1.0), 0);
        assert_eq!(f64_to_u64(f64::NAN), 0);
        assert_eq!(f64_to_u64(1e300), u64::MAX);
        assert_eq!(f64_to_usize(2.5), 2);
    }
}
