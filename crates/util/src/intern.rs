//! Paged direct-index maps keyed by dense ids.
//!
//! The hot-path slabs (heat statistics, pattern-analyzer windows, the
//! per-tick authority memo) need an `inode index → small integer` mapping
//! that is O(1) per lookup without hashing (banned for determinism) and
//! without allocating one slot per arena entry (the megascale namespaces
//! hold 10^7 inodes while a heat map tracks a few thousand directories).
//!
//! [`PagedMap`] resolves the tension with fixed-size pages allocated only
//! when a key inside them is first written, and an epoch stamp per entry
//! so [`PagedMap::clear`] is O(1): bumping the stamp invalidates every
//! entry without touching (or freeing) the pages. Cleared pages are kept
//! allocated, which is exactly what a per-tick cache wants — steady-state
//! clears stop allocating entirely.

/// Log2 of the page size. 4096 entries × 8 bytes = 32 KiB per page.
const PAGE_BITS: usize = 12;
/// Entries per page.
const PAGE_LEN: usize = 1 << PAGE_BITS;

#[derive(Clone, Copy, Debug, Default)]
struct Entry {
    /// Stamp of the [`PagedMap`] generation this entry was written in;
    /// entries from older generations read as absent.
    stamp: u32,
    val: u32,
}

/// A sparse `usize → u32` map over a dense key space, with O(1) get/set
/// and O(1) clear. Memory is proportional to the number of *touched pages*
/// (4096-key ranges), not to the key universe.
#[derive(Clone, Debug)]
pub struct PagedMap {
    pages: Vec<Option<Box<[Entry]>>>,
    /// Current generation; entries stamped differently are absent. Starts
    /// at 1 so zero-initialised pages read as empty.
    stamp: u32,
}

impl Default for PagedMap {
    // Derived `Default` would set `stamp: 0`, making every zeroed page
    // entry read as present — the stamp must start at 1.
    fn default() -> PagedMap {
        PagedMap::new()
    }
}

impl PagedMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> PagedMap {
        PagedMap {
            pages: Vec::new(),
            stamp: 1,
        }
    }

    /// The value at `key`, if one was set since the last [`clear`].
    ///
    /// [`clear`]: PagedMap::clear
    #[inline]
    #[must_use]
    pub fn get(&self, key: usize) -> Option<u32> {
        let page = self.pages.get(key >> PAGE_BITS)?.as_ref()?;
        let e = page[key & (PAGE_LEN - 1)];
        (e.stamp == self.stamp).then_some(e.val)
    }

    /// Sets `key` to `val`, allocating the covering page if needed.
    pub fn set(&mut self, key: usize, val: u32) {
        let page_idx = key >> PAGE_BITS;
        if page_idx >= self.pages.len() {
            self.pages.resize_with(page_idx + 1, || None);
        }
        let page = self.pages[page_idx]
            .get_or_insert_with(|| vec![Entry::default(); PAGE_LEN].into_boxed_slice());
        page[key & (PAGE_LEN - 1)] = Entry {
            stamp: self.stamp,
            val,
        };
    }

    /// Removes every entry in O(1) (pages stay allocated for reuse).
    pub fn clear(&mut self) {
        match self.stamp.checked_add(1) {
            Some(next) => self.stamp = next,
            None => {
                // One reset every 2^32 clears: wipe the stamps for real.
                for page in self.pages.iter_mut().flatten() {
                    for e in page.iter_mut() {
                        e.stamp = 0;
                    }
                }
                self.stamp = 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip_within_and_across_pages() {
        let mut m = PagedMap::new();
        assert_eq!(m.get(0), None);
        m.set(0, 7);
        m.set(PAGE_LEN - 1, 8);
        m.set(PAGE_LEN, 9); // second page
        m.set(5 * PAGE_LEN + 123, 10); // far page, holes in between
        assert_eq!(m.get(0), Some(7));
        assert_eq!(m.get(PAGE_LEN - 1), Some(8));
        assert_eq!(m.get(PAGE_LEN), Some(9));
        assert_eq!(m.get(5 * PAGE_LEN + 123), Some(10));
        assert_eq!(m.get(1), None, "untouched key in a touched page");
        assert_eq!(m.get(3 * PAGE_LEN), None, "key in an unallocated page");
    }

    #[test]
    fn overwrite_replaces() {
        let mut m = PagedMap::new();
        m.set(42, 1);
        m.set(42, 2);
        assert_eq!(m.get(42), Some(2));
    }

    #[test]
    fn clear_empties_without_freeing_pages() {
        let mut m = PagedMap::new();
        m.set(3, 1);
        m.set(PAGE_LEN + 3, 2);
        let pages_before = m.pages.len();
        m.clear();
        assert_eq!(m.get(3), None);
        assert_eq!(m.get(PAGE_LEN + 3), None);
        assert_eq!(m.pages.len(), pages_before, "pages retained");
        m.set(3, 9);
        assert_eq!(m.get(3), Some(9));
        assert_eq!(m.get(PAGE_LEN + 3), None, "old entry stays dead");
    }

    #[test]
    fn stamp_wrap_resets_cleanly() {
        let mut m = PagedMap::new();
        m.set(1, 5);
        m.stamp = u32::MAX; // force the wrap path on the next clear
        m.clear();
        assert_eq!(m.stamp, 1);
        assert_eq!(m.get(1), None);
        m.set(1, 6);
        assert_eq!(m.get(1), Some(6));
    }
}
