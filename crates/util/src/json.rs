//! A minimal JSON value model, parser, and writer.
//!
//! Result types that need to round-trip through JSON implement [`ToJson`]
//! and [`FromJson`]; the [`crate::impl_json_struct!`] and
//! [`crate::impl_json_enum!`] macros generate the field plumbing. Parsing
//! follows missing-field-keeps-default semantics: a struct is built from
//! `Default::default()` and only the keys present in the object overwrite
//! fields, so old dumps stay readable as types grow.

use std::collections::VecDeque;
use std::fmt;

/// A parsed JSON value.
///
/// Objects preserve insertion order so serialised output is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an ordered key/value list.
    Obj(Vec<(String, Json)>),
}

/// Error produced by [`Json::parse`] or [`FromJson`] conversions.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl JsonError {
    /// Creates an error from any displayable message.
    pub fn new(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Builds `Self` from a JSON value.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new(format!("trailing input at byte {}", p.pos)));
        }
        Ok(v)
    }

    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialises with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..step * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        // as-ok: guarded integral and |n| < 1e15, well inside i64 range
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::new(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(JsonError::new(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(JsonError::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| JsonError::new("short \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are rare in our output; map
                            // lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(JsonError::new("unknown escape")),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar, however many bytes it spans.
                    let rest = &self.bytes[self.pos..];
                    let s =
                        std::str::from_utf8(rest).map_err(|_| JsonError::new("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| JsonError::new("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b) if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::new(format!("bad number '{text}'")))
    }
}

macro_rules! impl_json_int {
    ($($ty:ty),+) => {
        $(
            impl ToJson for $ty {
                fn to_json(&self) -> Json {
                    // as-ok: JSON numbers are f64; exact below 2^53 by contract
                    Json::Num(*self as f64)
                }
            }
            impl FromJson for $ty {
                fn from_json(v: &Json) -> Result<Self, JsonError> {
                    let n = v
                        .as_f64()
                        .ok_or_else(|| JsonError::new("expected number"))?;
                    // Saturating float-to-int conversion; callers get a total decode.
                    Ok(n as $ty)
                }
            }
        )+
    };
}

impl_json_int!(u8, u16, u32, u64, usize, i32, i64);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Num(n) => Ok(*n),
            Json::Null => Ok(f64::NAN),
            _ => Err(JsonError::new("expected number")),
        }
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            _ => Err(JsonError::new("expected bool")),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new("expected string"))
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for VecDeque<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for VecDeque<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(x) => x.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

macro_rules! impl_json_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: ToJson),+> ToJson for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: FromJson),+> FromJson for ($($name,)+) {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let items = v.as_arr().ok_or_else(|| JsonError::new("expected array"))?;
                let mut it = items.iter();
                Ok(($(
                    {
                        let _ = $idx;
                        $name::from_json(
                            it.next().ok_or_else(|| JsonError::new("tuple too short"))?,
                        )?
                    },
                )+))
            }
        }
    };
}

impl_json_tuple!(A: 0, B: 1);
impl_json_tuple!(A: 0, B: 1, C: 2);
impl_json_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_json_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Implements [`ToJson`]/[`FromJson`] for a struct by listing its fields.
///
/// Deserialisation starts from `Default::default()` and overwrites only the
/// keys present in the object, so fields absent from old dumps keep their
/// default values.
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_string(), self.$field.to_json()),)+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                v: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                let mut out = <$ty as Default>::default();
                $(
                    if let Some(field) = v.get(stringify!($field)) {
                        out.$field = $crate::json::FromJson::from_json(field)?;
                    }
                )+
                Ok(out)
            }
        }
    };
}

/// Implements [`ToJson`]/[`FromJson`] for a fieldless enum as its variant
/// name string.
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:ty { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                let name = match self {
                    $(<$ty>::$variant => stringify!($variant),)+
                };
                $crate::json::Json::Str(name.to_string())
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(
                v: &$crate::json::Json,
            ) -> Result<Self, $crate::json::JsonError> {
                let s = v
                    .as_str()
                    .ok_or_else(|| $crate::json::JsonError::new("expected string"))?;
                match s {
                    $(stringify!($variant) => Ok(<$ty>::$variant),)+
                    other => Err($crate::json::JsonError::new(format!(
                        "unknown variant '{other}'"
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_prints_round_trip() {
        let text = r#"{"a": [1, 2.5, -3], "b": {"c": "hi\n", "d": null}, "e": true}"#;
        let v = Json::parse(text).unwrap();
        let compact = v.to_string_compact();
        assert_eq!(Json::parse(&compact).unwrap(), v);
        let pretty = v.to_string_pretty();
        assert_eq!(Json::parse(&pretty).unwrap(), v);
        assert!(pretty.contains("\"c\": \"hi\\n\""));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::Num(3.0).to_string_compact(), "3");
        assert_eq!(Json::Num(3.25).to_string_compact(), "3.25");
        assert_eq!(Json::Num(-7.0).to_string_compact(), "-7");
    }

    #[derive(Debug, Default, PartialEq)]
    struct Demo {
        name: String,
        count: u64,
        ratio: f64,
        tags: Vec<String>,
    }

    crate::impl_json_struct!(Demo {
        name,
        count,
        ratio,
        tags
    });

    #[test]
    fn struct_macro_round_trips_and_defaults_missing_fields() {
        let d = Demo {
            name: "x".into(),
            count: 9,
            ratio: 0.5,
            tags: vec!["a".into()],
        };
        let s = d.to_json().to_string_pretty();
        assert!(s.contains("\"name\": \"x\""));
        let back = Demo::from_json(&Json::parse(&s).unwrap()).unwrap();
        assert_eq!(back, d);
        // Missing fields keep their defaults, like #[serde(default)].
        let partial = Demo::from_json(&Json::parse(r#"{"count": 4}"#).unwrap()).unwrap();
        assert_eq!(partial.count, 4);
        assert_eq!(partial.name, "");
    }

    #[test]
    fn tuples_and_options() {
        let t = ("k".to_string(), 1.5f64, 2u64);
        let back: (String, f64, u64) = FromJson::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
        let none: Option<u32> = None;
        assert_eq!(none.to_json(), Json::Null);
        let some: Option<u32> = FromJson::from_json(&Json::Num(3.0)).unwrap();
        assert_eq!(some, Some(3));
    }
}
