//! Dependency-free support utilities for the Lunule workspace.
//!
//! The workspace builds fully offline, so the cross-cutting services that
//! would normally come from external crates live here instead:
//!
//! * [`rng`] — a small deterministic pseudo-random number generator used by
//!   the stochastic workload generators and the property-test harness.
//! * [`json`] — a minimal JSON value model, parser, and writer, plus the
//!   [`json::ToJson`]/[`json::FromJson`] traits the result types implement.
//! * [`propcheck`] — a seeded property-test harness in the spirit of
//!   QuickCheck: run a closure over many deterministic random cases and
//!   report the failing case index on panic.
//! * [`par`] — the sanctioned scoped worker pool with deterministic result
//!   ordering; the only module in the workspace allowed to spawn threads.
//! * [`convert`] — named, total numeric conversions; the only place the
//!   cast-safety lint lets hot-path code spell a lossy `as` cast.
//! * [`codec`] — the little-endian binary codec (plus CRC-32 and FNV-1a)
//!   snapshot sections are written with; floats round-trip bit-exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod convert;
pub mod intern;
pub mod json;
pub mod par;
pub mod propcheck;
pub mod rng;

pub use json::{FromJson, Json, JsonError, ToJson};
pub use par::WorkerPool;
pub use rng::DetRng;
