//! The sanctioned worker pool: scoped, std-only data parallelism with
//! deterministic result ordering.
//!
//! Every parallel driver in the workspace — the experiment grids, the
//! `run_all` process fan-out, the chaos-soak schedule battery — goes
//! through [`WorkerPool`]. Work items carry their submission index, workers
//! pull items off a shared atomic cursor (so load balances dynamically),
//! and results are re-assembled in submission order before being returned.
//! Because each item's computation is single-threaded and deterministic,
//! the pool's output is byte-for-byte independent of worker count and OS
//! scheduling: `--jobs 1` and `--jobs 32` produce identical results.
//!
//! This module is the only place in the workspace allowed to touch
//! `std::thread` — `cargo run -p xtask -- lint` bans `thread::spawn` /
//! `thread::scope` everywhere else, so ad-hoc threading cannot silently
//! break run determinism.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Environment variable overriding the default worker count (useful for
/// pinning CI parallelism without threading a flag everywhere).
pub const JOBS_ENV: &str = "LUNULE_JOBS";

/// The default worker count: `LUNULE_JOBS` when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`], otherwise 1.
pub fn default_jobs() -> usize {
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A scoped worker pool of a fixed width.
///
/// The pool owns no threads between calls: each [`WorkerPool::map`] /
/// [`WorkerPool::map_indices`] spawns `jobs` scoped workers, joins them
/// all, and returns results in submission order. A panic inside any work
/// item propagates to the caller after all workers have been joined (the
/// guarantee of [`std::thread::scope`]), so no result vector is ever
/// observed half-filled.
#[derive(Clone, Copy, Debug)]
pub struct WorkerPool {
    jobs: usize,
}

impl WorkerPool {
    /// A pool of `jobs` workers. `0` means "auto": [`default_jobs`].
    pub fn new(jobs: usize) -> Self {
        WorkerPool {
            jobs: if jobs == 0 { default_jobs() } else { jobs },
        }
    }

    /// A pool sized by [`default_jobs`].
    pub fn auto() -> Self {
        WorkerPool::new(0)
    }

    /// The resolved worker count (always >= 1).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every index in `0..n` across the pool's workers and
    /// returns the results ordered by index.
    ///
    /// `f(i)` must not depend on which worker runs it or in what order —
    /// the whole point of the pool is that it cannot observe either. Items
    /// are handed out through an atomic cursor, so a slow item does not
    /// hold up the others beyond the final join.
    pub fn map_indices<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let workers = self.jobs.min(n);
        if workers == 1 {
            return (0..n).map(f).collect();
        }
        let cursor = AtomicUsize::new(0);
        let merged: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    merged
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .append(&mut local);
                });
            }
        });
        let mut indexed = merged.into_inner().unwrap_or_else(PoisonError::into_inner);
        indexed.sort_unstable_by_key(|(i, _)| *i);
        debug_assert_eq!(indexed.len(), n, "every submitted item must report");
        indexed.into_iter().map(|(_, t)| t).collect()
    }

    /// Applies `f` to every item of `items` (with its index) and returns
    /// the results in item order. See [`WorkerPool::map_indices`].
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        self.map_indices(items.len(), |i| f(i, &items[i]))
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        // Items deliberately take wildly different amounts of work so the
        // completion order differs from the submission order.
        let pool = WorkerPool::new(4);
        let out = pool.map_indices(64, |i| {
            let spin = (64 - i) * 2_000;
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_add(k as u64);
            }
            (i, acc)
        });
        assert_eq!(out.len(), 64);
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx, *i);
        }
    }

    #[test]
    fn output_is_independent_of_worker_count() {
        let work = |i: usize| -> u64 { (i as u64).wrapping_mul(0x9E37_79B9) ^ 0xABCD };
        let solo = WorkerPool::new(1).map_indices(100, work);
        for jobs in [2, 3, 4, 8] {
            assert_eq!(WorkerPool::new(jobs).map_indices(100, work), solo);
        }
    }

    #[test]
    fn zero_items_and_single_worker_edge_cases() {
        let pool = WorkerPool::new(4);
        let empty: Vec<u32> = pool.map_indices(0, |_| 1);
        assert!(empty.is_empty());
        let one = WorkerPool::new(1);
        assert_eq!(one.jobs(), 1);
        assert_eq!(one.map_indices(3, |i| i * 10), vec![0, 10, 20]);
        // More workers than items clamps to the item count.
        assert_eq!(pool.map_indices(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn map_passes_items_with_indices() {
        let items = ["a", "bb", "ccc"];
        let out = WorkerPool::new(2).map(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:bb", "2:ccc"]);
    }

    #[test]
    fn panic_in_worker_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            WorkerPool::new(4).map_indices(16, |i| {
                if i == 9 {
                    panic!("worker 9 exploded");
                }
                i
            })
        });
        assert!(result.is_err(), "a worker panic must reach the caller");
    }

    #[test]
    fn zero_jobs_resolves_to_auto() {
        assert!(WorkerPool::new(0).jobs() >= 1);
        assert!(WorkerPool::auto().jobs() >= 1);
        assert!(default_jobs() >= 1);
    }
}
