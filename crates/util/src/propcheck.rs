//! A small seeded property-test harness.
//!
//! [`run`] executes a property closure over many deterministic random
//! cases. Each case gets its own [`DetRng`] derived from a fixed base seed,
//! so failures reproduce exactly; on panic the harness reports the failing
//! case index and seed before re-raising.

use crate::rng::DetRng;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Base seed all property cases derive from. Fixed so runs are reproducible.
pub const BASE_SEED: u64 = 0x5EED_1234_ABCD_0001;

/// Derives the RNG seed for property case `case`.
pub fn case_seed(case: u64) -> u64 {
    BASE_SEED ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs `property` over `cases` deterministic random cases.
///
/// The closure asserts its property with ordinary `assert!` macros; when a
/// case panics the harness prints the case index and seed (for
/// reproduction with [`DetRng::seed_from_u64`]) and re-raises the panic.
pub fn run<F>(cases: u64, mut property: F)
where
    F: FnMut(&mut DetRng),
{
    for case in 0..cases {
        let seed = case_seed(case);
        let mut rng = DetRng::seed_from_u64(seed);
        let result = catch_unwind(AssertUnwindSafe(|| (property)(&mut rng)));
        if let Err(payload) = result {
            eprintln!("propcheck: case {case}/{cases} failed (seed {seed:#018x})");
            resume_unwind(payload);
        }
    }
}

/// Runs `property` over `cases` deterministic random cases on a worker
/// pool.
///
/// Each case derives its RNG from [`case_seed`], so cases are mutually
/// independent and the parallel run checks exactly the same cases as
/// [`run`] would — only wall time changes. When cases fail, the harness
/// reports (and re-raises) the **lowest** failing case index, so the
/// reported failure does not depend on worker count or scheduling.
pub fn run_par<F>(cases: u64, jobs: usize, property: F)
where
    F: Fn(&mut DetRng) + Sync,
{
    let pool = crate::par::WorkerPool::new(jobs);
    let n = usize::try_from(cases).unwrap_or(usize::MAX);
    let outcomes = pool.map_indices(n, |i| {
        let case = crate::convert::usize_to_u64(i);
        let seed = case_seed(case);
        let mut rng = DetRng::seed_from_u64(seed);
        catch_unwind(AssertUnwindSafe(|| (property)(&mut rng))).err()
    });
    for (case, outcome) in outcomes.into_iter().enumerate() {
        if let Some(payload) = outcome {
            let seed = case_seed(crate::convert::usize_to_u64(case));
            eprintln!("propcheck: case {case}/{cases} failed (seed {seed:#018x})");
            resume_unwind(payload);
        }
    }
}

/// Samples a vector of `f64` values: length uniform in `len`, each element
/// uniform in `[lo, hi)`. A common shape for load-vector properties.
pub fn vec_f64(rng: &mut DetRng, len: std::ops::Range<usize>, lo: f64, hi: f64) -> Vec<f64> {
    let n = rng.gen_range(len);
    (0..n).map(|_| rng.gen_f64_in(lo, hi)).collect()
}

/// Samples a vector of `usize` values: length uniform in `len`, each
/// element uniform in `each`.
pub fn vec_usize(
    rng: &mut DetRng,
    len: std::ops::Range<usize>,
    each: std::ops::Range<usize>,
) -> Vec<usize> {
    let n = rng.gen_range(len);
    (0..n).map(|_| rng.gen_range(each.clone())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_case_deterministically() {
        let mut samples = Vec::new();
        run(16, |rng| samples.push(rng.next_u64()));
        let mut again = Vec::new();
        run(16, |rng| again.push(rng.next_u64()));
        assert_eq!(samples, again);
        assert_eq!(samples.len(), 16);
        // Distinct cases see distinct streams.
        assert_ne!(samples[0], samples[1]);
    }

    #[test]
    fn failures_propagate() {
        let result = catch_unwind(|| {
            run(8, |rng| {
                assert!(rng.gen_f64() < 2.0); // always passes
                assert!(rng.gen_f64() >= 0.0);
            });
        });
        assert!(result.is_ok());
        let result = catch_unwind(|| run(8, |_| panic!("boom")));
        assert!(result.is_err());
    }

    #[test]
    fn parallel_run_checks_the_same_cases() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // Sum of each case's first draw is order-independent, so it must
        // match between the sequential and parallel harnesses.
        let seq = AtomicU64::new(0);
        run(32, |rng| {
            seq.fetch_add(rng.next_u64() >> 8, Ordering::Relaxed);
        });
        for jobs in [1, 4] {
            let par = AtomicU64::new(0);
            run_par(32, jobs, |rng| {
                par.fetch_add(rng.next_u64() >> 8, Ordering::Relaxed);
            });
            assert_eq!(par.into_inner(), seq.load(Ordering::Relaxed));
        }
    }

    #[test]
    fn parallel_failures_propagate() {
        let ok = catch_unwind(|| run_par(8, 4, |rng| assert!(rng.gen_f64() < 2.0)));
        assert!(ok.is_ok());
        let bad = catch_unwind(|| run_par(8, 4, |_| panic!("boom")));
        assert!(bad.is_err());
    }

    #[test]
    fn samplers_respect_ranges() {
        run(32, |rng| {
            let v = vec_f64(rng, 0..20, 1.0, 5.0);
            assert!(v.len() < 20);
            assert!(v.iter().all(|x| (1.0..5.0).contains(x)));
            let u = vec_usize(rng, 1..10, 3..9);
            assert!((1..10).contains(&u.len()));
            assert!(u.iter().all(|x| (3..9).contains(x)));
        });
    }
}
