//! A small deterministic pseudo-random number generator.
//!
//! The generator is xoshiro256** seeded through SplitMix64, the standard
//! recipe recommended by the xoshiro authors. It is not cryptographic; it
//! exists to give the workload generators and the property-test harness
//! reproducible, well-distributed streams without an external crate.

/// One SplitMix64 step: advances `state` and returns the next output.
///
/// Also used directly by the workload generators to derive independent
/// per-client seeds from a master seed.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic PRNG (xoshiro256**) with convenience samplers.
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        // as-ok: top 53 bits of a u64 are exact in f64; 2^53 likewise
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn gen_f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.gen_f64()
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    ///
    /// Returns `range.start` for an empty range rather than panicking, so
    /// callers can sample degenerate ranges without guarding.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        if range.end <= range.start {
            return range.start;
        }
        let span = crate::convert::usize_to_u64(range.end - range.start);
        // Multiply-shift bounded sampling (Lemire); the slight modulo bias
        // of the naive approach is avoided without a rejection loop.
        // as-ok: u128 product of two u64s shifted down 64 fits u64 exactly
        let hi = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        range.start + crate::convert::u64_to_usize(hi)
    }

    /// The generator's internal state, for checkpointing. Restoring via
    /// [`DetRng::from_state`] resumes the exact stream position.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`DetRng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        DetRng { s }
    }

    /// Uniform boolean.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Bernoulli trial: `true` with probability `p`.
    pub fn gen_ratio(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::seed_from_u64(43);
        assert_ne!(DetRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = DetRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = DetRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(3..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|s| *s), "all buckets hit");
        assert_eq!(rng.gen_range(5..5), 5, "empty range is total");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn ratio_tracks_probability() {
        let mut rng = DetRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }
}
