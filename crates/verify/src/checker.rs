//! The invariant checker proper.

use crate::violation::{InvariantKind, Violation};
use lunule_core::{IfModelConfig, ImbalanceFactorModel};
use lunule_namespace::{
    Frag, FragKey, InodeId, MdsRank, Namespace, SubtreeMap, HASH_BITS, HASH_MASK,
};
use lunule_util::convert::usize_to_u64;

/// Audits the cross-layer invariants of the balancing stack.
///
/// The checker is an accumulator: each `check_*` method appends any
/// violations it finds and returns how many it added, so callers can run a
/// subset of checks per tick and the full battery per epoch. Collected
/// violations stay until [`InvariantChecker::take_violations`] drains them.
#[derive(Clone, Debug)]
pub struct InvariantChecker {
    model: ImbalanceFactorModel,
    last_generation: Option<u64>,
    violations: Vec<Violation>,
}

impl Default for InvariantChecker {
    fn default() -> Self {
        InvariantChecker::new(IfModelConfig::default())
    }
}

impl InvariantChecker {
    /// Builds a checker whose IF-model checks use `if_cfg`.
    pub fn new(if_cfg: IfModelConfig) -> Self {
        InvariantChecker {
            model: ImbalanceFactorModel::new(if_cfg),
            last_generation: None,
            violations: Vec::new(),
        }
    }

    fn record(&mut self, kind: InvariantKind, detail: String) {
        self.violations.push(Violation { kind, detail });
    }

    /// Violations observed so far, oldest first.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// True when no violation has been observed (or all were drained).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Drains and returns the accumulated violations.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// Panics with a readable report if any violation was observed.
    pub fn assert_clean(&self) {
        assert!(
            self.violations.is_empty(),
            "invariant violations detected:\n{}",
            self.violations
                .iter()
                .map(|v| format!("  - {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// Subtree-map well-formedness (cheap, O(entries)): no duplicate
    /// per-directory fragments, valid fragment encodings, entries only on
    /// live directories, and a generation counter that never rewinds.
    /// Suitable for running after every simulator tick.
    pub fn check_subtree_map(&mut self, ns: &Namespace, map: &SubtreeMap) -> usize {
        let before = self.violations.len();
        let entries = map.all_entries();
        for pair in entries.windows(2) {
            if pair[0].0 == pair[1].0 {
                self.record(
                    InvariantKind::FragOverlap,
                    format!(
                        "directory {:?} carries duplicate entries for frag {:?}",
                        pair[0].0.dir, pair[0].0.frag
                    ),
                );
            }
        }
        for (key, rank) in &entries {
            if !frag_well_formed(&key.frag) {
                self.record(
                    InvariantKind::MalformedFrag,
                    format!(
                        "entry ({:?}, {:?}) -> {rank:?} has an invalid fragment",
                        key.dir, key.frag
                    ),
                );
            }
            if key.dir.index() >= ns.len() {
                self.record(
                    InvariantKind::DanglingEntry,
                    format!("entry on {:?} points outside the inode arena", key.dir),
                );
                continue;
            }
            let inode = ns.inode(key.dir);
            if !inode.is_alive() || !inode.is_dir() {
                self.record(
                    InvariantKind::DanglingEntry,
                    format!(
                        "entry on {:?} points at a dead or non-directory inode",
                        key.dir
                    ),
                );
            }
        }
        let gen = map.generation();
        if let Some(last) = self.last_generation {
            if gen < last {
                self.record(
                    InvariantKind::GenerationRegressed,
                    format!("subtree-map generation went from {last} back to {gen}"),
                );
            }
        }
        self.last_generation = Some(gen);
        self.violations.len() - before
    }

    /// Fragment-partition coverage (O(directories)): every live directory's
    /// fragment set must tile the full dentry-hash space with no gap and no
    /// overlap, so authority resolution is total. Run per epoch.
    pub fn check_frag_partitions(&mut self, ns: &Namespace) -> usize {
        let before = self.violations.len();
        for idx in 0..ns.len() {
            let ino = InodeId::from_index(idx);
            let inode = ns.inode(ino);
            if !inode.is_alive() || !inode.is_dir() {
                continue;
            }
            let frags = ns.frags_of(ino);
            if !frags_partition(&frags) {
                self.record(
                    InvariantKind::FragPartition,
                    format!(
                        "directory {ino:?} frag set {frags:?} does not partition the hash space"
                    ),
                );
            }
        }
        self.violations.len() - before
    }

    /// Migration conservation (O(inodes × depth)): every entry's rank lies
    /// inside the cluster and the per-rank inode counts sum to the
    /// namespace's live count — no inode is lost or double-counted by the
    /// partition, whatever migrations are in flight. Run per epoch and
    /// around migration steps in tests.
    pub fn check_conservation(&mut self, ns: &Namespace, map: &SubtreeMap, n_mds: usize) -> usize {
        let before = self.violations.len();
        if map.root_rank().index() >= n_mds {
            self.record(
                InvariantKind::RankOutOfRange,
                format!("root rank {:?} outside cluster of {n_mds}", map.root_rank()),
            );
        }
        for (key, rank) in map.all_entries() {
            if rank.index() >= n_mds {
                self.record(
                    InvariantKind::RankOutOfRange,
                    format!(
                        "entry ({:?}, {:?}) assigned to {rank:?} outside cluster of {n_mds}",
                        key.dir, key.frag
                    ),
                );
            }
        }
        let counts = map.inode_counts(ns, n_mds);
        let total: usize = counts.iter().sum();
        let live = ns.live_count();
        if total != live {
            self.record(
                InvariantKind::InodeConservation,
                format!("per-rank inode counts {counts:?} sum to {total}, namespace holds {live} live inodes"),
            );
        }
        self.violations.len() - before
    }

    /// Frozen-subtree stability: each `(subtree, exporter)` pair in
    /// `frozen` is a migration in its commit window; its authority must
    /// still resolve to the exporter (the flip happens only at commit).
    pub fn check_frozen_subtrees(
        &mut self,
        ns: &Namespace,
        map: &SubtreeMap,
        frozen: &[(FragKey, MdsRank)],
    ) -> usize {
        let before = self.violations.len();
        for (key, exporter) in frozen {
            let auth = map.frag_authority(ns, key.dir, &key.frag);
            if auth != *exporter {
                self.record(
                    InvariantKind::FrozenAuthorityChanged,
                    format!(
                        "frozen subtree ({:?}, {:?}) resolves to {auth:?} but its exporter is {exporter:?}",
                        key.dir, key.frag
                    ),
                );
            }
        }
        self.violations.len() - before
    }

    /// IF-model laws on a concrete load vector: the factor is finite and in
    /// `[0, 1]`, invariant under permutations of the loads, and — when every
    /// capacity equals the configured `C` — the heterogeneous variant agrees
    /// with the homogeneous one.
    pub fn check_if_model(&mut self, loads: &[f64], capacities: &[f64]) -> usize {
        let before = self.violations.len();
        let base = self.model.imbalance_factor(loads);
        if !base.is_finite() || !(0.0..=1.0).contains(&base) {
            self.record(
                InvariantKind::IfModel,
                format!("IF({loads:?}) = {base} escapes [0, 1]"),
            );
            return self.violations.len() - before;
        }
        let mut reversed: Vec<f64> = loads.to_vec();
        reversed.reverse();
        let mut rotated: Vec<f64> = loads.to_vec();
        rotated.rotate_left(loads.len().min(1));
        for (label, perm) in [("reversed", reversed), ("rotated", rotated)] {
            let v = self.model.imbalance_factor(&perm);
            if (v - base).abs() > 1e-9 {
                self.record(
                    InvariantKind::IfModel,
                    format!("IF is not permutation-invariant: {base} vs {v} ({label})"),
                );
            }
        }
        let hetero = self.model.imbalance_factor_hetero(loads, capacities);
        if !hetero.is_finite() || !(0.0..=1.0).contains(&hetero) {
            self.record(
                InvariantKind::IfModel,
                format!("hetero IF({loads:?}, {capacities:?}) = {hetero} escapes [0, 1]"),
            );
        }
        let c = self.model.config().mds_capacity;
        let homogeneous = capacities.len() >= loads.len()
            && capacities.iter().all(|cap| cap.to_bits() == c.to_bits());
        if homogeneous && (hetero - base).abs() > 1e-9 {
            self.record(
                InvariantKind::IfModel,
                format!(
                    "hetero IF {hetero} disagrees with homogeneous IF {base} on equal capacities"
                ),
            );
        }
        self.violations.len() - before
    }

    /// Migration-lifecycle ledger: every job the migrator ever accepted is
    /// accounted for exactly once — `started == committed + abandoned +
    /// in_flight`. When an event journal is kept, its per-kind counts
    /// (`start`, `commit`, `abandon`) must agree with the counters, so the
    /// telemetry stream cannot silently drift from the engine it narrates.
    /// Run per epoch under `strict-invariants`.
    pub fn check_migration_ledger(
        &mut self,
        started: u64,
        committed: u64,
        abandoned: u64,
        in_flight: u64,
        journal: Option<(u64, u64, u64)>,
    ) -> usize {
        let before = self.violations.len();
        if started != committed + abandoned + in_flight {
            self.record(
                InvariantKind::MigrationLedger,
                format!(
                    "started {started} != committed {committed} + abandoned {abandoned} + in-flight {in_flight}"
                ),
            );
        }
        if let Some((ev_start, ev_commit, ev_abandon)) = journal {
            if ev_start != started || ev_commit != committed || ev_abandon != abandoned {
                self.record(
                    InvariantKind::MigrationLedger,
                    format!(
                        "event journal (start {ev_start}, commit {ev_commit}, abandon {ev_abandon}) \
                         disagrees with counters (started {started}, committed {committed}, abandoned {abandoned})"
                    ),
                );
            }
        }
        self.violations.len() - before
    }

    /// No authority on a crashed rank: `down[r]` marks rank `r` as
    /// currently down; neither the root default nor any subtree entry may
    /// target such a rank. Fault injection must fail subtrees over *before*
    /// the crash takes effect, so this holds at every tick of every fault
    /// schedule.
    pub fn check_down_ranks(&mut self, map: &SubtreeMap, down: &[bool]) -> usize {
        let before = self.violations.len();
        let is_down = |rank: MdsRank| down.get(rank.index()).copied().unwrap_or(false);
        if is_down(map.root_rank()) {
            self.record(
                InvariantKind::AuthorityOnDownRank,
                format!("root default targets crashed rank {:?}", map.root_rank()),
            );
        }
        for (key, rank) in map.all_entries() {
            if is_down(rank) {
                self.record(
                    InvariantKind::AuthorityOnDownRank,
                    format!(
                        "entry ({:?}, {:?}) targets crashed rank {rank:?}",
                        key.dir, key.frag
                    ),
                );
            }
        }
        self.violations.len() - before
    }

    /// Cohort member conservation: the live cohorts' member counts must
    /// sum to the attached client total, every live cohort must hold at
    /// least one member, and — when per-origin totals are supplied — each
    /// origin's members must sum to its configured group size. Splits and
    /// merges move members between cohorts; none may mint or drop one.
    ///
    /// Takes plain data (counts, not the cohort set itself) so the checker
    /// stays independent of the simulator's types — the same reason the
    /// other checks take namespaces and maps rather than simulations.
    pub fn check_cohort_conservation(
        &mut self,
        cohort_counts: &[u64],
        origin_totals: Option<(&[u64], &[u64])>,
        n_clients: u64,
    ) -> usize {
        let before = self.violations.len();
        let total: u64 = cohort_counts.iter().sum();
        if total != n_clients {
            self.record(
                InvariantKind::CohortConservation,
                format!("cohorts hold {total} members, expected {n_clients}"),
            );
        }
        for (i, c) in cohort_counts.iter().enumerate() {
            if *c == 0 {
                self.record(
                    InvariantKind::CohortConservation,
                    format!("cohort {i} is live but holds no members"),
                );
            }
        }
        if let Some((observed, expected)) = origin_totals {
            if observed.len() != expected.len() {
                self.record(
                    InvariantKind::CohortConservation,
                    format!(
                        "{} origin totals reported, {} groups configured",
                        observed.len(),
                        expected.len()
                    ),
                );
            }
            for (g, (o, e)) in observed.iter().zip(expected).enumerate() {
                if o != e {
                    self.record(
                        InvariantKind::CohortConservation,
                        format!("origin {g} holds {o} members, expected {e}"),
                    );
                }
            }
        }
        self.violations.len() - before
    }

    /// Cohort id-interval partition: `intervals` are `(start, len,
    /// cohort)` triples which must be sorted, non-empty, and tile
    /// `[0, n_clients)` exactly; each cohort's interval lengths must sum
    /// to its count in `cohort_counts`; and each live cohort's canonical
    /// id (`canonical_ids`, indexed like the counts) must equal its lowest
    /// member id.
    pub fn check_cohort_partition(
        &mut self,
        intervals: &[(usize, usize, usize)],
        cohort_counts: &[u64],
        canonical_ids: &[usize],
        n_clients: usize,
    ) -> usize {
        let before = self.violations.len();
        let mut at = 0usize;
        let mut counted = vec![0u64; cohort_counts.len()];
        let mut lowest = vec![usize::MAX; cohort_counts.len()];
        for &(start, len, cohort) in intervals {
            if len == 0 {
                self.record(
                    InvariantKind::CohortPartition,
                    format!("empty interval at member {start}"),
                );
            }
            if start != at {
                self.record(
                    InvariantKind::CohortPartition,
                    format!("gap/overlap at member {at}: next interval starts at {start}"),
                );
            }
            at = start + len;
            if cohort >= cohort_counts.len() {
                self.record(
                    InvariantKind::CohortPartition,
                    format!("interval [{start}, {at}) points at unknown cohort {cohort}"),
                );
                continue;
            }
            counted[cohort] += usize_to_u64(len);
            lowest[cohort] = lowest[cohort].min(start);
        }
        if at != n_clients {
            self.record(
                InvariantKind::CohortPartition,
                format!("partition covers {at} members, expected {n_clients}"),
            );
        }
        for (i, (have, want)) in counted.iter().zip(cohort_counts).enumerate() {
            if have != want {
                self.record(
                    InvariantKind::CohortPartition,
                    format!("cohort {i}: intervals hold {have} members, count says {want}"),
                );
            }
        }
        for (i, (&low, &id)) in lowest.iter().zip(canonical_ids).enumerate() {
            if cohort_counts.get(i).copied().unwrap_or(0) > 0 && low != id {
                self.record(
                    InvariantKind::CohortPartition,
                    format!("cohort {i}: canonical id {id} but lowest member {low}"),
                );
            }
        }
        self.violations.len() - before
    }

    /// Shard-plan coverage: `ranges` (as `(start, end)` half-open index
    /// ranges, in shard order) must tile `[0, arena_len)` contiguously —
    /// the property that makes a sharded scan equivalent to a sequential
    /// one.
    pub fn check_shard_coverage(&mut self, ranges: &[(usize, usize)], arena_len: usize) -> usize {
        let before = self.violations.len();
        let mut at = 0usize;
        for (i, &(start, end)) in ranges.iter().enumerate() {
            if start != at || end < start {
                self.record(
                    InvariantKind::ShardCoverage,
                    format!("shard {i} spans [{start}, {end}), expected to start at {at}"),
                );
            }
            at = end.max(at);
        }
        if at != arena_len {
            self.record(
                InvariantKind::ShardCoverage,
                format!("shards cover {at} inodes, arena holds {arena_len}"),
            );
        }
        self.violations.len() - before
    }

    /// The full battery: map well-formedness, fragment partitions,
    /// conservation, and frozen-subtree stability in one call.
    pub fn audit(
        &mut self,
        ns: &Namespace,
        map: &SubtreeMap,
        n_mds: usize,
        frozen: &[(FragKey, MdsRank)],
    ) -> usize {
        self.check_subtree_map(ns, map)
            + self.check_frag_partitions(ns)
            + self.check_conservation(ns, map, n_mds)
            + self.check_frozen_subtrees(ns, map, frozen)
    }
}

/// True when `frag`'s `(value, bits)` encoding is inside the hash space.
fn frag_well_formed(frag: &Frag) -> bool {
    if frag.bits() > HASH_BITS {
        return false;
    }
    if frag.bits() == 0 {
        frag.value() == 0
    } else {
        frag.value() < (1u32 << frag.bits())
    }
}

/// True when `frags` tiles `[0, HASH_MASK]` exactly once.
fn frags_partition(frags: &[Frag]) -> bool {
    if frags.is_empty() {
        return false;
    }
    let mut sorted: Vec<&Frag> = frags.iter().collect();
    sorted.sort_by_key(|f| f.range_start());
    let mut next = 0u32;
    for f in sorted {
        if f.range_start() != next {
            return false;
        }
        next = f.range_end();
    }
    next == HASH_MASK + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(checker: &InvariantChecker) -> Vec<InvariantKind> {
        checker.violations().iter().map(|v| v.kind).collect()
    }

    /// /a/a1/f plus /b, with a delegated to mds.1 and a1 nested on mds.2.
    fn fixture() -> (Namespace, SubtreeMap, InodeId, InodeId) {
        let mut ns = Namespace::new();
        let a = ns.mkdir(InodeId::ROOT, "a").unwrap();
        let a1 = ns.mkdir(a, "a1").unwrap();
        ns.create_file(a1, "f", 10).unwrap();
        ns.mkdir(InodeId::ROOT, "b").unwrap();
        let mut map = SubtreeMap::new(MdsRank(0));
        map.set_authority(FragKey::whole(a), MdsRank(1));
        map.set_authority(FragKey::whole(a1), MdsRank(2));
        (ns, map, a, a1)
    }

    #[test]
    fn clean_stack_passes_every_check() {
        let (ns, map, a, _) = fixture();
        let mut checker = InvariantChecker::default();
        let frozen = [(FragKey::whole(a), MdsRank(1))];
        assert_eq!(checker.audit(&ns, &map, 3, &frozen), 0);
        assert_eq!(checker.check_if_model(&[100.0, 5.0, 5.0], &[]), 0);
        checker.assert_clean();
        assert!(checker.is_clean());
    }

    #[test]
    fn duplicate_frag_entry_detected() {
        let (ns, mut map, a, _) = fixture();
        // Bypass set_authority's dedup: two entries for the same (dir, frag).
        map.fault_inject_entry(FragKey::whole(a), MdsRank(2));
        assert!(!map.invariants_hold());
        let mut checker = InvariantChecker::default();
        assert!(checker.check_subtree_map(&ns, &map) >= 1);
        assert!(kinds(&checker).contains(&InvariantKind::FragOverlap));
    }

    #[test]
    fn entry_on_non_directory_detected() {
        let mut ns = Namespace::new();
        let d = ns.mkdir(InodeId::ROOT, "d").unwrap();
        let f = ns.create_file(d, "f", 0).unwrap();
        let mut map = SubtreeMap::new(MdsRank(0));
        map.set_authority(FragKey::whole(f), MdsRank(1));
        let mut checker = InvariantChecker::default();
        assert_eq!(checker.check_subtree_map(&ns, &map), 1);
        assert_eq!(kinds(&checker), vec![InvariantKind::DanglingEntry]);
    }

    #[test]
    fn entry_outside_arena_detected() {
        let (ns, mut map, _, _) = fixture();
        map.fault_inject_entry(FragKey::whole(InodeId::from_index(9_999)), MdsRank(1));
        let mut checker = InvariantChecker::default();
        assert_eq!(checker.check_subtree_map(&ns, &map), 1);
        assert_eq!(kinds(&checker), vec![InvariantKind::DanglingEntry]);
    }

    #[test]
    fn generation_regression_detected() {
        let (ns, mut map, _, _) = fixture();
        let mut checker = InvariantChecker::default();
        assert_eq!(checker.check_subtree_map(&ns, &map), 0);
        map.fault_set_generation(0);
        assert_eq!(checker.check_subtree_map(&ns, &map), 1);
        assert_eq!(kinds(&checker), vec![InvariantKind::GenerationRegressed]);
        // Forward progress from the rewound value is accepted again.
        let mut checker2 = InvariantChecker::default();
        assert_eq!(checker2.check_subtree_map(&ns, &map), 0);
    }

    #[test]
    fn lossy_plan_breaks_conservation() {
        // A migration plan that ships a subtree to rank 7 in a 2-rank
        // cluster strands its inodes outside the partition: both the rank
        // range check and the conservation sum must fire.
        let (ns, mut map, _, a1) = fixture();
        map.set_authority(FragKey::whole(a1), MdsRank(7));
        let mut checker = InvariantChecker::default();
        assert!(checker.check_conservation(&ns, &map, 2) >= 2);
        let ks = kinds(&checker);
        assert!(ks.contains(&InvariantKind::RankOutOfRange));
        assert!(ks.contains(&InvariantKind::InodeConservation));
    }

    #[test]
    fn conservation_holds_for_clean_plans() {
        let (ns, map, _, _) = fixture();
        let mut checker = InvariantChecker::default();
        assert_eq!(checker.check_conservation(&ns, &map, 3), 0);
    }

    #[test]
    fn frozen_subtree_flip_detected() {
        let (ns, map, a, _) = fixture();
        // The migrator froze (a, root) while mds.0 was its exporter, but
        // the map already says mds.1 — an early authority flip.
        let mut checker = InvariantChecker::default();
        let frozen = [(FragKey::whole(a), MdsRank(0))];
        assert_eq!(checker.check_frozen_subtrees(&ns, &map, &frozen), 1);
        assert_eq!(kinds(&checker), vec![InvariantKind::FrozenAuthorityChanged]);
    }

    #[test]
    fn if_model_laws_hold_on_ordinary_vectors() {
        let mut checker = InvariantChecker::default();
        for loads in [
            vec![0.0; 5],
            vec![5_000.0, 0.0, 0.0, 0.0],
            vec![1.0, 2.0, 3.0],
            vec![4_000.0; 4],
        ] {
            let caps = vec![5_000.0; loads.len()];
            assert_eq!(checker.check_if_model(&loads, &caps), 0, "{loads:?}");
        }
    }

    #[test]
    fn if_model_flags_non_finite_output() {
        let mut checker = InvariantChecker::default();
        assert_eq!(checker.check_if_model(&[f64::NAN, 1.0, 2.0], &[]), 1);
        assert_eq!(kinds(&checker), vec![InvariantKind::IfModel]);
    }

    #[test]
    fn migration_ledger_reconciles() {
        let mut checker = InvariantChecker::default();
        // 5 started = 3 committed + 1 abandoned + 1 in flight; journal agrees.
        assert_eq!(
            checker.check_migration_ledger(5, 3, 1, 1, Some((5, 3, 1))),
            0
        );
        // Journal is optional.
        assert_eq!(checker.check_migration_ledger(5, 3, 1, 1, None), 0);
        checker.assert_clean();
    }

    #[test]
    fn migration_ledger_leak_detected() {
        let mut checker = InvariantChecker::default();
        // A job vanished: started 5, but only 4 accounted for.
        assert_eq!(checker.check_migration_ledger(5, 3, 1, 0, None), 1);
        assert_eq!(kinds(&checker), vec![InvariantKind::MigrationLedger]);
    }

    #[test]
    fn migration_journal_drift_detected() {
        let mut checker = InvariantChecker::default();
        // Counters balance, but the event journal missed a commit.
        assert_eq!(
            checker.check_migration_ledger(5, 3, 1, 1, Some((5, 2, 1))),
            1
        );
        assert_eq!(kinds(&checker), vec![InvariantKind::MigrationLedger]);
    }

    #[test]
    fn authority_on_down_rank_detected() {
        let (_, map, _, _) = fixture();
        let mut checker = InvariantChecker::default();
        // Nobody down: clean. (An empty/short mask treats ranks as up.)
        assert_eq!(checker.check_down_ranks(&map, &[false; 3]), 0);
        assert_eq!(checker.check_down_ranks(&map, &[]), 0);
        // a1's authority (mds.2) crashes without fail-over: one violation.
        assert_eq!(checker.check_down_ranks(&map, &[false, false, true]), 1);
        assert_eq!(
            checker.take_violations()[0].kind,
            InvariantKind::AuthorityOnDownRank
        );
        // The root default rank going down is also caught.
        assert_eq!(checker.check_down_ranks(&map, &[true, false, false]), 1);
        assert!(kinds(&checker).contains(&InvariantKind::AuthorityOnDownRank));
    }

    #[test]
    fn take_violations_drains() {
        let (ns, mut map, a, _) = fixture();
        map.fault_inject_entry(FragKey::whole(a), MdsRank(2));
        let mut checker = InvariantChecker::default();
        checker.check_subtree_map(&ns, &map);
        assert!(!checker.is_clean());
        let drained = checker.take_violations();
        assert!(!drained.is_empty());
        assert!(checker.is_clean());
        checker.assert_clean();
    }

    #[test]
    #[should_panic(expected = "invariant violations detected")]
    fn assert_clean_panics_with_report() {
        let (ns, map, a, _) = fixture();
        let mut checker = InvariantChecker::default();
        checker.check_frozen_subtrees(&ns, &map, &[(FragKey::whole(a), MdsRank(0))]);
        checker.assert_clean();
    }

    #[test]
    fn frag_partition_helper() {
        let (l, r) = Frag::root().split_in_two();
        let (ll, lr) = l.split_in_two();
        assert!(frags_partition(&[Frag::root()]));
        assert!(frags_partition(&[l, r]));
        assert!(frags_partition(&[ll, lr, r]));
        assert!(!frags_partition(&[l]));
        assert!(!frags_partition(&[l, l]));
        assert!(!frags_partition(&[ll, r]));
        assert!(!frags_partition(&[]));
    }

    #[test]
    fn cohort_conservation_accepts_matching_totals() {
        let mut checker = InvariantChecker::default();
        let added = checker.check_cohort_conservation(&[3, 1, 4], Some((&[4, 4], &[4, 4])), 8);
        assert_eq!(added, 0);
        checker.assert_clean();
    }

    #[test]
    fn cohort_conservation_flags_drift_and_empty_cohorts() {
        let mut checker = InvariantChecker::default();
        // Sum is 7, not 8; cohort 1 is empty; origin 0 holds 3 not 4.
        let added = checker.check_cohort_conservation(&[3, 0, 4], Some((&[3, 4], &[4, 4])), 8);
        assert_eq!(added, 3);
        assert!(kinds(&checker)
            .iter()
            .all(|k| *k == InvariantKind::CohortConservation));
    }

    #[test]
    fn cohort_conservation_flags_origin_arity_mismatch() {
        let mut checker = InvariantChecker::default();
        let added = checker.check_cohort_conservation(&[8], Some((&[8], &[4, 4])), 8);
        assert_eq!(added, 2, "arity mismatch plus the 8-vs-4 drift on origin 0");
    }

    #[test]
    fn cohort_partition_accepts_exact_tiling() {
        let mut checker = InvariantChecker::default();
        // Cohort 1 owns [0,2) and [5,8); cohort 0 owns [2,5).
        let added =
            checker.check_cohort_partition(&[(0, 2, 1), (2, 3, 0), (5, 3, 1)], &[3, 5], &[2, 0], 8);
        assert_eq!(added, 0);
        checker.assert_clean();
    }

    #[test]
    fn cohort_partition_flags_gap_overlap_and_bad_canonical_id() {
        let mut checker = InvariantChecker::default();
        // Gap at member 2 (next interval starts at 3), cohort 0's
        // intervals hold 2 members but its count says 3, and cohort 1's
        // canonical id is 0 while its lowest member is 3.
        let added = checker.check_cohort_partition(&[(0, 2, 0), (3, 5, 1)], &[3, 5], &[0, 0], 8);
        assert_eq!(added, 3, "expected gap+count+id");
        assert!(kinds(&checker)
            .iter()
            .all(|k| *k == InvariantKind::CohortPartition));
    }

    #[test]
    fn cohort_partition_flags_unknown_cohort_and_empty_interval() {
        let mut checker = InvariantChecker::default();
        let added = checker.check_cohort_partition(&[(0, 0, 0), (0, 4, 7)], &[4], &[0], 4);
        // Empty interval, unknown cohort 7, and cohort 0's count unmet.
        assert_eq!(added, 3);
    }

    #[test]
    fn shard_coverage_accepts_contiguous_tiles() {
        let mut checker = InvariantChecker::default();
        // An empty shard (jobs exceed items) is legal as long as the
        // tiling stays contiguous.
        assert_eq!(
            checker.check_shard_coverage(&[(0, 3), (3, 3), (3, 7)], 7),
            0
        );
        assert_eq!(
            checker.check_shard_coverage(&[(0, 3), (3, 5), (5, 9)], 9),
            0
        );
        assert_eq!(checker.check_shard_coverage(&[], 0), 0);
        checker.assert_clean();
    }

    #[test]
    fn shard_coverage_flags_gaps_and_short_cover() {
        let mut checker = InvariantChecker::default();
        // Gap between shard 0 and shard 1, and the tail stops short.
        let added = checker.check_shard_coverage(&[(0, 2), (3, 5)], 6);
        assert_eq!(added, 2);
        assert!(kinds(&checker)
            .iter()
            .all(|k| *k == InvariantKind::ShardCoverage));
    }
}
