//! # lunule-verify
//!
//! Cross-layer invariant checker for the Lunule reproduction. The balancing
//! stack maintains several properties that no single crate can see on its
//! own — they span the namespace, the subtree partition map, the migration
//! protocol, and the analytical IF model:
//!
//! * **Subtree-map well-formedness** — per-directory fragment entries are
//!   never duplicated, every entry's fragment encoding is valid, entries
//!   point at live directories, every directory's live fragment set
//!   partitions the dentry-hash space, and the map generation only moves
//!   forward.
//! * **Migration conservation** — every authority entry targets a rank
//!   inside the cluster, and the per-rank inode counts sum to the
//!   namespace's live inode count before, during, and after every
//!   migration step (a "lossy" plan that strands inodes on a rank outside
//!   the cluster breaks this immediately).
//! * **Frozen-subtree stability** — a subtree in its commit window is
//!   frozen: its authority must keep resolving to the exporter until the
//!   commit flips it.
//! * **IF-model laws** — Equations 1–3 of the paper imply `IF ∈ [0, 1]`,
//!   permutation invariance of the load vector, and agreement between the
//!   heterogeneous and homogeneous variants when all capacities equal `C`.
//!
//! [`InvariantChecker`] audits all of these on demand. `lunule-sim` runs it
//! after every tick and epoch when built with the `strict-invariants`
//! feature; tests call it directly.
//!
//! ```
//! use lunule_namespace::{FragKey, InodeId, MdsRank, Namespace, SubtreeMap};
//! use lunule_verify::InvariantChecker;
//!
//! let mut ns = Namespace::new();
//! let dir = ns.mkdir(InodeId::ROOT, "d").unwrap();
//! let mut map = SubtreeMap::new(MdsRank(0));
//! map.set_authority(FragKey::whole(dir), MdsRank(1));
//!
//! let mut checker = InvariantChecker::default();
//! checker.audit(&ns, &map, 2, &[]);
//! checker.assert_clean();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod violation;

pub use checker::InvariantChecker;
pub use violation::{InvariantKind, Violation};
