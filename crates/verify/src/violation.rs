//! Violation records produced by the checker.

/// The invariant class a [`Violation`] belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// A directory carries duplicate entries for the same fragment.
    FragOverlap,
    /// A fragment whose `(value, bits)` encoding is out of range.
    MalformedFrag,
    /// A directory's live fragment set fails to partition the hash space.
    FragPartition,
    /// An authority entry points at a dead or non-directory inode.
    DanglingEntry,
    /// The subtree-map generation counter moved backwards.
    GenerationRegressed,
    /// An authority entry targets a rank outside the cluster.
    RankOutOfRange,
    /// Per-rank inode counts do not sum to the namespace's live count.
    InodeConservation,
    /// A frozen (committing) subtree no longer resolves to its exporter.
    FrozenAuthorityChanged,
    /// An IF-model output escaped `[0, 1]` or violated a model law.
    IfModel,
    /// The migration lifecycle ledger failed to reconcile: started jobs
    /// must equal committed + abandoned + in-flight, and the telemetry
    /// journal (when kept) must agree with the counters.
    MigrationLedger,
    /// An authority entry (or the root default) targets a rank that is
    /// currently crashed — clients would route metadata ops into a void.
    AuthorityOnDownRank,
    /// Cohort member counts failed to conserve: the live cohorts' counts
    /// (or a group's member total) drifted from the attached client count.
    CohortConservation,
    /// The cohort id-interval partition has a gap, overlap, or a cohort
    /// whose canonical id is not its lowest member.
    CohortPartition,
    /// A shard plan's ranges fail to tile the inode arena exactly.
    ShardCoverage,
}

/// One observed violation: the invariant that broke plus the offending
/// values, rendered for humans.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: InvariantKind,
    /// Human-readable description carrying the offending values.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:?}] {}", self.kind, self.detail)
    }
}
