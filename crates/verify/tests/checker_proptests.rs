//! Property tests driving the invariant checker: randomly built stacks are
//! always clean, and randomly corrupted stacks are always caught.

use lunule_namespace::{FragKey, InodeId, MdsRank, Namespace, SubtreeMap, HASH_BITS};
use lunule_util::propcheck::{self, vec_f64};
use lunule_verify::{InvariantChecker, InvariantKind};

/// Builds a random namespace (dirs + files + frag splits) and a random but
/// legal subtree map over `n_mds` ranks.
fn arb_stack(rng: &mut lunule_util::DetRng, n_mds: usize) -> (Namespace, SubtreeMap, Vec<InodeId>) {
    let mut ns = Namespace::new();
    let mut dirs = vec![InodeId::ROOT];
    for _ in 0..rng.gen_range(1..40) {
        let parent = dirs[rng.gen_range(0..dirs.len())];
        if rng.gen_bool() {
            dirs.push(ns.mkdir(parent, "d").unwrap());
        } else {
            ns.create_file(parent, "f", 1).unwrap();
        }
    }
    // Random legal frag splits keep every dir's set a partition.
    for _ in 0..rng.gen_range(0..6) {
        let dir = dirs[rng.gen_range(0..dirs.len())];
        let frags = ns.frags_of(dir);
        let target = frags[rng.gen_range(0..frags.len())];
        if target.bits() < HASH_BITS {
            let _ = ns.split_frag(dir, &target, 1);
        }
    }
    let mut map = SubtreeMap::new(MdsRank(0));
    for _ in 0..rng.gen_range(0..12) {
        let dir = dirs[rng.gen_range(0..dirs.len())];
        let frags = ns.frags_of(dir);
        let frag = frags[rng.gen_range(0..frags.len())];
        let rank = MdsRank(rng.gen_range(0..n_mds) as u16);
        map.set_authority(FragKey { dir, frag }, rank);
    }
    (ns, map, dirs)
}

/// Random legal build sequences never trip the checker.
#[test]
fn random_legal_stacks_are_clean() {
    propcheck::run(64, |rng| {
        let n_mds = rng.gen_range(1..6);
        let (ns, map, _) = arb_stack(rng, n_mds);
        let mut checker = InvariantChecker::default();
        assert_eq!(checker.audit(&ns, &map, n_mds, &[]), 0);
        checker.assert_clean();
    });
}

/// Simplify keeps a random stack clean and conservation intact.
#[test]
fn simplify_keeps_stacks_clean() {
    propcheck::run(64, |rng| {
        let n_mds = rng.gen_range(2..5);
        let (ns, mut map, _) = arb_stack(rng, n_mds);
        map.simplify(&ns);
        let mut checker = InvariantChecker::default();
        assert_eq!(checker.audit(&ns, &map, n_mds, &[]), 0);
    });
}

/// Injecting a duplicate entry anywhere is always caught as FragOverlap.
#[test]
fn injected_duplicates_always_caught() {
    propcheck::run(64, |rng| {
        let (ns, mut map, dirs) = arb_stack(rng, 4);
        let dir = dirs[rng.gen_range(0..dirs.len())];
        let frags = ns.frags_of(dir);
        let frag = frags[rng.gen_range(0..frags.len())];
        let key = FragKey { dir, frag };
        // Make sure the entry exists once, then inject a raw duplicate.
        map.set_authority(key, MdsRank(1));
        map.fault_inject_entry(key, MdsRank(rng.gen_range(0..4) as u16));
        let mut checker = InvariantChecker::default();
        assert!(checker.check_subtree_map(&ns, &map) >= 1);
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.kind == InvariantKind::FragOverlap));
    });
}

/// Assigning any subtree to a rank outside the cluster is always caught by
/// the conservation battery (lossy migration plan).
#[test]
fn out_of_cluster_ranks_always_caught() {
    propcheck::run(64, |rng| {
        let n_mds = rng.gen_range(1..4);
        let (ns, mut map, dirs) = arb_stack(rng, n_mds);
        let victim = dirs[rng.gen_range(0..dirs.len())];
        let bogus = MdsRank((n_mds + rng.gen_range(0..8)) as u16);
        map.set_authority(FragKey::whole(victim), bogus);
        let mut checker = InvariantChecker::default();
        assert!(checker.check_conservation(&ns, &map, n_mds) >= 1);
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.kind == InvariantKind::RankOutOfRange));
    });
}

/// A rewound generation is always caught, wherever in the sequence the
/// rewind happens.
#[test]
fn generation_rewind_always_caught() {
    propcheck::run(64, |rng| {
        let (ns, mut map, dirs) = arb_stack(rng, 4);
        let mut checker = InvariantChecker::default();
        checker.check_subtree_map(&ns, &map);
        checker.assert_clean();
        // A few more legal mutations, then a rewind below the watermark.
        for _ in 0..rng.gen_range(1..5) {
            let dir = dirs[rng.gen_range(0..dirs.len())];
            map.set_authority(FragKey::whole(dir), MdsRank(2));
        }
        checker.check_subtree_map(&ns, &map);
        checker.assert_clean();
        let back = rng.gen_range(0..map.generation() as usize) as u64;
        map.fault_set_generation(back);
        checker.check_subtree_map(&ns, &map);
        assert!(checker
            .violations()
            .iter()
            .any(|v| v.kind == InvariantKind::GenerationRegressed));
    });
}

/// The IF-model laws hold for random load vectors and random homogeneous
/// capacity vectors.
#[test]
fn if_laws_hold_for_random_vectors() {
    propcheck::run(192, |rng| {
        let loads = vec_f64(rng, 0..16, 0.0, 20_000.0);
        let cfg = lunule_core::IfModelConfig::default();
        let caps = vec![cfg.mds_capacity; loads.len()];
        let mut checker = InvariantChecker::new(cfg);
        assert_eq!(checker.check_if_model(&loads, &caps), 0, "{loads:?}");
        // Heterogeneous capacities must still keep the factor in bounds.
        let hetero_caps = vec_f64(rng, 0..16, 100.0, 10_000.0);
        assert_eq!(checker.check_if_model(&loads, &hetero_caps), 0);
    });
}
