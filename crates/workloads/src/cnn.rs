//! The CNN image pre-processing workload.
//!
//! Models the data-preparation phase of CNN training: the dataset has the
//! shape of ImageNet ILSVRC2012 (1000 class directories, ~1.28 M images of
//! ~114.3 KB on average), and every client scans the entire dataset in
//! directory order to build its metadata list, then creates one large
//! packed record file. Files are read once and never revisited — the
//! pure-spatial-locality pattern that defeats hotness-based balancing.

use crate::spec::WorkloadSpec;
use crate::streams::ScanStream;
use lunule_namespace::{build_flat_dataset, FlatDataset, InodeId, Namespace};
use lunule_sim::OpStream;
use std::sync::Arc;

/// Average ImageNet image size, bytes (paper: 114.3 KB).
pub const CNN_FILE_SIZE: u64 = 114_300;

/// Builder for the CNN workload.
#[derive(Clone, Copy, Debug)]
pub struct CnnWorkload {
    /// Number of class directories (paper: 1000).
    pub dirs: usize,
    /// Images per class directory (paper: ~1280).
    pub files_per_dir: usize,
    /// Concurrent clients.
    pub clients: usize,
    /// Size of the record file each client creates at the end.
    pub record_size: u64,
}

impl CnnWorkload {
    /// Derives scaled parameters from a spec. Both axes scale with √scale
    /// so the file count scales linearly with `scale`.
    pub fn from_spec(spec: &WorkloadSpec) -> Self {
        let axis = spec.scale.sqrt();
        CnnWorkload {
            dirs: ((1000.0 * axis) as usize).max(8),
            files_per_dir: ((1280.0 * axis) as usize).max(8),
            clients: spec.clients,
            record_size: (128.0 * 1024.0 * 1024.0 * spec.scale) as u64,
        }
    }

    /// Builds the dataset into `ns` and returns per-client streams.
    pub fn build(&self, ns: &mut Namespace) -> Vec<Box<dyn OpStream>> {
        let dataset = build_flat_dataset(
            ns,
            "imagenet",
            FlatDataset {
                dirs: self.dirs,
                files_per_dir: self.files_per_dir,
                file_size: CNN_FILE_SIZE,
            },
        );
        let files = Arc::new(dataset.files_in_scan_order());
        // Per-client output directories for the packed record files.
        let out_root = ns.mkdir_total(InodeId::ROOT, "cnn_out");
        (0..self.clients)
            .map(|c| {
                let out = ns.mkdir_total(out_root, &format!("client{c:04}"));
                Box::new(ScanStream::new(
                    Arc::clone(&files),
                    Some((out, self.record_size)),
                )) as Box<dyn OpStream>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{WorkloadKind, WorkloadSpec};
    use lunule_sim::MetaOp;

    #[test]
    fn scaled_shape() {
        let spec = WorkloadSpec {
            kind: WorkloadKind::Cnn,
            clients: 3,
            scale: 0.01,
            seed: 1,
        };
        let w = CnnWorkload::from_spec(&spec);
        assert_eq!(w.dirs, 100);
        assert_eq!(w.files_per_dir, 128);
        let mut ns = Namespace::new();
        let streams = w.build(&mut ns);
        assert_eq!(streams.len(), 3);
        assert_eq!(ns.file_count(), 100 * 128);
    }

    #[test]
    fn every_client_scans_whole_dataset_once() {
        let spec = WorkloadSpec {
            kind: WorkloadKind::Cnn,
            clients: 2,
            scale: 0.001,
            seed: 1,
        };
        let w = CnnWorkload::from_spec(&spec);
        let mut ns = Namespace::new();
        let mut streams = w.build(&mut ns);
        let total_files = ns.file_count();
        let mut reads = 0;
        let mut creates = 0;
        let s = &mut streams[0];
        while let Some(op) = s.next_op(&ns) {
            match op {
                MetaOp::Read(_) => reads += 1,
                MetaOp::Create { .. } => creates += 1,
                MetaOp::Remove(_) => panic!("the CNN pipeline never removes"),
            }
        }
        assert_eq!(reads, total_files);
        assert_eq!(creates, 1, "exactly one record file per client");
    }
}
