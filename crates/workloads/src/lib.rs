//! # lunule-workloads
//!
//! Deterministic generators for the five metadata-heavy workloads the paper
//! evaluates (Table 1) plus their four-way mixture:
//!
//! | kind | pattern | locality signature |
//! |---|---|---|
//! | CNN | full-dataset scan + record create | spatial (never re-visits) |
//! | NLP | small-file corpus scan | spatial, flat huge dirs |
//! | Web | trace replay, Zipf popularity | temporal |
//! | Zipf | private dirs, 80/20 random reads | temporal, per-client |
//! | MD  | continuous creates | write-only, growing dirs |
//!
//! The paper runs these against real datasets (ImageNet, a news corpus, an
//! Apache access log, Filebench, mdtest); this crate substitutes synthetic
//! datasets with the same published shapes and the same locality
//! signatures, scaled by a `scale` factor — see DESIGN.md for the
//! substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cnn;
pub mod mdtest;
pub mod mixed;
pub mod nlp;
pub mod spec;
pub mod streams;
pub mod trace;
pub mod web;
pub mod zipf;
pub mod zipf_read;

pub use cnn::CnnWorkload;
pub use mdtest::{MdtestFullStream, MdtestFullWorkload, MdtestWorkload};
pub use mixed::MixedWorkload;
pub use nlp::NlpWorkload;
pub use spec::{WorkloadKind, WorkloadSpec};
pub use streams::{client_seed, CreateStream, HotSetStream, ReplayStream, ScanStream};
pub use trace::{dump_trace, load_trace, trace_streams, LoadedTrace};
pub use web::WebWorkload;
pub use zipf::{HotSetSampler, ZipfSampler};
pub use zipf_read::ZipfReadWorkload;
