//! The MDtest-create workload.
//!
//! Each client operates on a private, initially empty directory and keeps
//! creating empty files into it (paper: 100k per client). It is write-only
//! and 100% metadata; balance requires directory-fragment splitting because
//! every client's load concentrates on one huge directory. This is the
//! workload the paper's scalability experiment (Fig. 13a) uses.

use crate::spec::WorkloadSpec;
use crate::streams::CreateStream;
use lunule_namespace::{build_private_dirs, InodeId, Namespace};
use lunule_sim::OpStream;

/// Builder for the MDtest workload.
#[derive(Clone, Copy, Debug)]
pub struct MdtestWorkload {
    /// Files each client creates (paper: 100_000).
    pub creates_per_client: u64,
    /// Concurrent clients.
    pub clients: usize,
}

impl MdtestWorkload {
    /// Derives scaled parameters from a spec.
    pub fn from_spec(spec: &WorkloadSpec) -> Self {
        MdtestWorkload {
            creates_per_client: ((100_000.0 * spec.scale) as u64).max(100),
            clients: spec.clients,
        }
    }

    /// Builds the empty private directories and returns create streams.
    pub fn build(&self, ns: &mut Namespace) -> Vec<Box<dyn OpStream>> {
        let dataset = build_private_dirs(ns, "mdtest", self.clients, 0, 0);
        dataset
            .dirs
            .iter()
            .map(|(dir, _)| {
                Box::new(CreateStream::new(*dir, self.creates_per_client, 0)) as Box<dyn OpStream>
            })
            .collect()
    }
}

/// The full mdtest cycle the real tool runs per client: create N files,
/// stat each of them, then remove them all. Exercises the namespace's
/// delete path and keeps the balancer honest under a shrinking namespace.
#[derive(Clone)]
pub struct MdtestFullStream {
    parent: InodeId,
    creates_left: u64,
    created: Vec<InodeId>,
    stat_pos: usize,
    remove_pos: usize,
}

impl MdtestFullStream {
    /// A create→stat→remove cycle of `count` files under `parent`.
    pub fn new(parent: InodeId, count: u64) -> Self {
        MdtestFullStream {
            parent,
            creates_left: count,
            created: Vec::with_capacity(count as usize),
            stat_pos: 0,
            remove_pos: 0,
        }
    }
}

impl lunule_sim::OpStream for MdtestFullStream {
    fn next_op(&mut self, _ns: &lunule_namespace::Namespace) -> Option<lunule_sim::MetaOp> {
        use lunule_sim::MetaOp;
        if self.creates_left > 0 {
            self.creates_left -= 1;
            return Some(MetaOp::Create {
                parent: self.parent,
                size: 0,
            });
        }
        if self.stat_pos < self.created.len() {
            let op = MetaOp::Read(self.created[self.stat_pos]);
            self.stat_pos += 1;
            return Some(op);
        }
        if self.remove_pos < self.created.len() {
            let op = MetaOp::Remove(self.created[self.remove_pos]);
            self.remove_pos += 1;
            return Some(op);
        }
        None
    }

    fn on_created(&mut self, id: InodeId) {
        self.created.push(id);
    }

    fn len_hint(&self) -> Option<u64> {
        let n = self.creates_left + self.created.len() as u64;
        Some(n * 3 - (self.stat_pos + self.remove_pos) as u64)
    }

    fn try_clone_box(&self) -> Option<Box<dyn OpStream>> {
        Some(Box::new(self.clone()))
    }
}

/// Builder for the full-cycle variant.
#[derive(Clone, Copy, Debug)]
pub struct MdtestFullWorkload {
    /// Files each client creates, stats, and removes.
    pub files_per_client: u64,
    /// Concurrent clients.
    pub clients: usize,
}

impl MdtestFullWorkload {
    /// Derives scaled parameters from a spec.
    pub fn from_spec(spec: &crate::spec::WorkloadSpec) -> Self {
        MdtestFullWorkload {
            files_per_client: ((100_000.0 * spec.scale) as u64).max(100),
            clients: spec.clients,
        }
    }

    /// Builds the empty private directories and returns full-cycle streams.
    pub fn build(&self, ns: &mut Namespace) -> Vec<Box<dyn OpStream>> {
        let dataset = build_private_dirs(ns, "mdtest_full", self.clients, 0, 0);
        dataset
            .dirs
            .iter()
            .map(|(dir, _)| {
                Box::new(MdtestFullStream::new(*dir, self.files_per_client)) as Box<dyn OpStream>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{WorkloadKind, WorkloadSpec};
    use lunule_sim::MetaOp;

    #[test]
    fn creates_only_into_private_dir() {
        let spec = WorkloadSpec {
            kind: WorkloadKind::MdCreate,
            clients: 2,
            scale: 0.001,
            seed: 0,
        };
        let w = MdtestWorkload::from_spec(&spec);
        let mut ns = Namespace::new();
        let mut streams = w.build(&mut ns);
        let mut creates = 0;
        let mut parent = None;
        while let Some(op) = streams[0].next_op(&ns) {
            match op {
                MetaOp::Create { parent: p, size } => {
                    creates += 1;
                    assert_eq!(size, 0, "MDtest files are empty");
                    match parent {
                        None => parent = Some(p),
                        Some(prev) => assert_eq!(prev, p, "one private dir per client"),
                    }
                }
                other => panic!("MDtest create phase is write-only, got {other:?}"),
            }
        }
        assert_eq!(creates, w.creates_per_client);
    }

    #[test]
    fn full_cycle_creates_stats_removes() {
        let mut ns = Namespace::new();
        let d = ns.mkdir(lunule_namespace::InodeId::ROOT, "out").unwrap();
        let mut s = MdtestFullStream::new(d, 3);
        let mut created = Vec::new();
        // Phase 1: creates (simulate the cluster materialising them).
        for _ in 0..3 {
            match s.next_op(&ns).unwrap() {
                MetaOp::Create { parent, .. } => {
                    let id = ns.create_file(parent, "f", 0).unwrap();
                    lunule_sim::OpStream::on_created(&mut s, id);
                    created.push(id);
                }
                other => panic!("expected create, got {other:?}"),
            }
        }
        // Phase 2: stats, in creation order.
        for id in &created {
            assert_eq!(s.next_op(&ns), Some(MetaOp::Read(*id)));
        }
        // Phase 3: removes.
        for id in &created {
            assert_eq!(s.next_op(&ns), Some(MetaOp::Remove(*id)));
            ns.unlink(*id).unwrap();
        }
        assert_eq!(s.next_op(&ns), None);
        assert_eq!(ns.file_count(), 0);
        assert!(ns.invariants_hold());
    }

    #[test]
    fn dirs_start_empty() {
        let spec = WorkloadSpec {
            kind: WorkloadKind::MdCreate,
            clients: 3,
            scale: 0.001,
            seed: 0,
        };
        let w = MdtestWorkload::from_spec(&spec);
        let mut ns = Namespace::new();
        w.build(&mut ns);
        assert_eq!(ns.file_count(), 0);
        assert_eq!(ns.dir_count(), 1 + 1 + 3); // root + mdtest + clients
    }
}
