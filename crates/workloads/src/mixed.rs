//! The mixed workload: the paper's Section 4.4 setup.
//!
//! Clients are partitioned into four groups, each running one of the four
//! single workloads (CNN, NLP, Web, Zipf) concurrently against one shared
//! namespace. Jobs finish at different times, which keeps re-creating fresh
//! imbalance — the stress case for any balancer's trigger logic.

use crate::spec::{WorkloadKind, WorkloadSpec};
use lunule_namespace::Namespace;
use lunule_sim::OpStream;

/// Builder for the mixed workload.
#[derive(Clone, Copy, Debug)]
pub struct MixedWorkload {
    spec: WorkloadSpec,
}

impl MixedWorkload {
    /// Wraps the spec (client partitioning happens at build time).
    pub fn from_spec(spec: &WorkloadSpec) -> Self {
        MixedWorkload { spec: *spec }
    }

    /// The four constituent workloads, in group order.
    pub const GROUPS: [WorkloadKind; 4] = [
        WorkloadKind::Cnn,
        WorkloadKind::Nlp,
        WorkloadKind::Web,
        WorkloadKind::ZipfRead,
    ];

    /// Builds all four datasets into one namespace; client `i` belongs to
    /// group `i % 4`, so any client count splits as evenly as possible.
    pub fn build(&self, ns: &mut Namespace) -> Vec<Box<dyn OpStream>> {
        let total = self.spec.clients;
        let mut group_sizes = [total / 4; 4];
        for size in group_sizes.iter_mut().take(total % 4) {
            *size += 1;
        }
        let mut per_group: Vec<Vec<Box<dyn OpStream>>> = Vec::with_capacity(4);
        for (g, kind) in Self::GROUPS.iter().enumerate() {
            let sub = WorkloadSpec {
                kind: *kind,
                clients: group_sizes[g].max(1),
                scale: self.spec.scale,
                seed: self.spec.seed ^ (g as u64 + 1),
            };
            let mut streams = sub.build_into(ns);
            streams.truncate(group_sizes[g]);
            per_group.push(streams);
        }
        // Interleave groups so client ids mix workloads (client i -> group
        // i % 4), matching how the paper spreads groups over machines.
        let mut out: Vec<Box<dyn OpStream>> = Vec::with_capacity(total);
        let mut g = 0;
        while out.len() < total {
            if let Some(stream) = per_group[g].pop() {
                out.push(stream);
            }
            g = (g + 1) % 4;
            debug_assert!(
                per_group.iter().any(|v| !v.is_empty()) || out.len() == total,
                "group sizes must sum to the client count"
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_all_groups_into_one_namespace() {
        let spec = WorkloadSpec {
            kind: WorkloadKind::Mixed,
            clients: 8,
            scale: 0.003,
            seed: 3,
        };
        let (ns, streams) = spec.build();
        assert_eq!(streams.len(), 8);
        // All four dataset roots exist under /.
        for name in ["imagenet", "corpus", "www", "filebench"] {
            assert!(
                ns.child_by_name(lunule_namespace::InodeId::ROOT, name)
                    .is_some(),
                "missing dataset {name}"
            );
        }
        assert!(ns.invariants_hold());
    }

    #[test]
    fn uneven_client_counts_split_fairly() {
        let spec = WorkloadSpec {
            kind: WorkloadKind::Mixed,
            clients: 7,
            scale: 0.003,
            seed: 3,
        };
        let (_ns, streams) = spec.build();
        assert_eq!(streams.len(), 7);
    }
}
