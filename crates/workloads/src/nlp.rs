//! The NLP training workload.
//!
//! Models a text-classifier training job over a news corpus: ~836k files of
//! ~2.8 KB spread over 14 folders, and every client consumes the whole
//! corpus. Like CNN it is a scan (files are read once), but the namespace is
//! much flatter — 14 giant directories — so balance requires fragment-level
//! splitting rather than shipping whole directories.

use crate::spec::WorkloadSpec;
use crate::streams::ScanStream;
use lunule_namespace::{build_flat_dataset, FlatDataset, Namespace};
use lunule_sim::OpStream;
use std::sync::Arc;

/// Average corpus file size, bytes (paper: 2.8 KB).
pub const NLP_FILE_SIZE: u64 = 2_800;

/// Builder for the NLP workload.
#[derive(Clone, Copy, Debug)]
pub struct NlpWorkload {
    /// Corpus folders (paper: 14).
    pub dirs: usize,
    /// Files per folder (paper: ~59.7k).
    pub files_per_dir: usize,
    /// Concurrent clients.
    pub clients: usize,
}

impl NlpWorkload {
    /// Derives scaled parameters from a spec (folder count stays 14; only
    /// the per-folder population scales).
    pub fn from_spec(spec: &WorkloadSpec) -> Self {
        NlpWorkload {
            dirs: 14,
            files_per_dir: ((836_000.0 / 14.0 * spec.scale) as usize).max(8),
            clients: spec.clients,
        }
    }

    /// Builds the corpus into `ns` and returns per-client streams.
    pub fn build(&self, ns: &mut Namespace) -> Vec<Box<dyn OpStream>> {
        let dataset = build_flat_dataset(
            ns,
            "corpus",
            FlatDataset {
                dirs: self.dirs,
                files_per_dir: self.files_per_dir,
                file_size: NLP_FILE_SIZE,
            },
        );
        let files = Arc::new(dataset.files_in_scan_order());
        (0..self.clients)
            .map(|_| Box::new(ScanStream::new(Arc::clone(&files), None)) as Box<dyn OpStream>)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{WorkloadKind, WorkloadSpec};

    #[test]
    fn fourteen_folders_always() {
        for scale in [0.001, 0.01, 0.1] {
            let spec = WorkloadSpec {
                kind: WorkloadKind::Nlp,
                clients: 1,
                scale,
                seed: 0,
            };
            let w = NlpWorkload::from_spec(&spec);
            assert_eq!(w.dirs, 14);
        }
    }

    #[test]
    fn scan_covers_corpus() {
        let spec = WorkloadSpec {
            kind: WorkloadKind::Nlp,
            clients: 2,
            scale: 0.0005,
            seed: 0,
        };
        let w = NlpWorkload::from_spec(&spec);
        let mut ns = Namespace::new();
        let mut streams = w.build(&mut ns);
        let mut count = 0;
        while streams[1].next_op(&ns).is_some() {
            count += 1;
        }
        assert_eq!(count, ns.file_count());
    }
}
