//! Workload specifications: the five paper workloads and their mixture.
//!
//! Each spec builds (a) the namespace shape of the dataset the paper used
//! and (b) one op stream per client with the same locality signature
//! (Table 1 of the paper). Sizes scale with a `scale` factor so runs fit a
//! laptop; the shapes and access patterns are preserved.

use crate::cnn::CnnWorkload;
use crate::mdtest::MdtestWorkload;
use crate::mixed::MixedWorkload;
use crate::nlp::NlpWorkload;
use crate::web::WebWorkload;
use crate::zipf_read::ZipfReadWorkload;
use lunule_namespace::Namespace;
use lunule_sim::OpStream;

/// Which of the paper's workloads to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// CNN image pre-processing: full-dataset scan + record-file create.
    Cnn,
    /// NLP training: scan of a small-file text corpus.
    Nlp,
    /// Web server trace replay: Zipf popularity, strong temporal locality.
    Web,
    /// Filebench Zipfian read: private dirs, 80/20 rule.
    ZipfRead,
    /// MDtest create: write-only creates into private dirs.
    MdCreate,
    /// Full MDtest cycle: create, stat, then remove every file (extension
    /// beyond the paper, which runs the create phase only).
    MdFull,
    /// The paper's four-way mixture (CNN + NLP + Web + Zipf client groups).
    Mixed,
}

impl WorkloadKind {
    /// The five single workloads, in the paper's Table 1 order.
    pub const SINGLES: [WorkloadKind; 5] = [
        WorkloadKind::Cnn,
        WorkloadKind::Nlp,
        WorkloadKind::Web,
        WorkloadKind::ZipfRead,
        WorkloadKind::MdCreate,
    ];

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Cnn => "CNN",
            WorkloadKind::Nlp => "NLP",
            WorkloadKind::Web => "Web",
            WorkloadKind::ZipfRead => "Zipf",
            WorkloadKind::MdCreate => "MD",
            WorkloadKind::MdFull => "MD-full",
            WorkloadKind::Mixed => "Mixed",
        }
    }

    /// The metadata-operation share the paper reports for the workload
    /// (Table 1); the mixture reports the client-weighted mean of its
    /// constituents.
    pub fn meta_op_ratio(self) -> f64 {
        match self {
            WorkloadKind::Cnn => 0.781,
            WorkloadKind::Nlp => 0.928,
            WorkloadKind::Web => 0.572,
            WorkloadKind::ZipfRead => 0.500,
            WorkloadKind::MdCreate => 1.000,
            WorkloadKind::MdFull => 1.000,
            WorkloadKind::Mixed => (0.781 + 0.928 + 0.572 + 0.500) / 4.0,
        }
    }

    /// One-line description for Table 1 output.
    pub fn description(self) -> &'static str {
        match self {
            WorkloadKind::Cnn => {
                "ImageNet-shaped scan (1000 class dirs), every client reads all images once, then creates a packed record file"
            }
            WorkloadKind::Nlp => {
                "Text-corpus scan: 14 folders of ~2.8 KB files, every client reads the corpus once"
            }
            WorkloadKind::Web => {
                "HTTP-log replay over a deep document tree; Zipf popularity, clients replay the trace in order"
            }
            WorkloadKind::ZipfRead => {
                "Filebench-Zipfian: each client randomly reads its private 10k-file dir, 80% of reads on 20% of files"
            }
            WorkloadKind::MdCreate => {
                "MDtest: each client continuously creates empty files in its private directory"
            }
            WorkloadKind::MdFull => {
                "MDtest full cycle: each client creates, stats, and removes its files"
            }
            WorkloadKind::Mixed => "Four client groups running CNN / NLP / Web / Zipf concurrently",
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A fully parameterised workload instance.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadSpec {
    /// Which workload.
    pub kind: WorkloadKind,
    /// Number of concurrent clients.
    pub clients: usize,
    /// Dataset/op-count scale relative to the paper (1.0 = full size).
    pub scale: f64,
    /// Master seed for all stochastic generation.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A spec with the experiment defaults: 100 clients at 1/10 scale.
    pub fn new(kind: WorkloadKind) -> Self {
        WorkloadSpec {
            kind,
            clients: 100,
            scale: 0.1,
            seed: 0x1A7E_5EED,
        }
    }

    /// Validates parameters.
    pub fn validate(&self) {
        assert!(self.clients >= 1, "need at least one client");
        assert!(
            self.scale > 0.0 && self.scale <= 1.0,
            "scale must be in (0, 1]"
        );
    }

    /// Materialises the namespace and one op stream per client.
    pub fn build(&self) -> (Namespace, Vec<Box<dyn OpStream>>) {
        self.validate();
        let mut ns = Namespace::new();
        let streams = self.build_into(&mut ns);
        (ns, streams)
    }

    /// Builds this workload's dataset into an existing namespace and
    /// returns its client streams. Used directly by the mixture.
    pub fn build_into(&self, ns: &mut Namespace) -> Vec<Box<dyn OpStream>> {
        match self.kind {
            WorkloadKind::Cnn => CnnWorkload::from_spec(self).build(ns),
            WorkloadKind::Nlp => NlpWorkload::from_spec(self).build(ns),
            WorkloadKind::Web => WebWorkload::from_spec(self).build(ns),
            WorkloadKind::ZipfRead => ZipfReadWorkload::from_spec(self).build(ns),
            WorkloadKind::MdCreate => MdtestWorkload::from_spec(self).build(ns),
            WorkloadKind::MdFull => crate::mdtest::MdtestFullWorkload::from_spec(self).build(ns),
            WorkloadKind::Mixed => MixedWorkload::from_spec(self).build(ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_ratios() {
        assert_eq!(WorkloadKind::Cnn.label(), "CNN");
        assert_eq!(WorkloadKind::MdCreate.meta_op_ratio(), 1.0);
        for k in WorkloadKind::SINGLES {
            let r = k.meta_op_ratio();
            assert!((0.5..=1.0).contains(&r), "{k}: {r}");
            assert!(!k.description().is_empty());
        }
    }

    #[test]
    fn every_kind_builds() {
        for kind in [
            WorkloadKind::Cnn,
            WorkloadKind::Nlp,
            WorkloadKind::Web,
            WorkloadKind::ZipfRead,
            WorkloadKind::MdCreate,
            WorkloadKind::MdFull,
            WorkloadKind::Mixed,
        ] {
            let spec = WorkloadSpec {
                kind,
                clients: 4,
                scale: 0.02,
                seed: 9,
            };
            let (ns, streams) = spec.build();
            assert_eq!(streams.len(), 4, "{kind}");
            assert!(ns.len() > 1, "{kind} namespace must be non-trivial");
            assert!(ns.invariants_hold(), "{kind}");
        }
    }

    #[test]
    #[should_panic]
    fn zero_clients_rejected() {
        WorkloadSpec {
            clients: 0,
            ..WorkloadSpec::new(WorkloadKind::Cnn)
        }
        .validate();
    }

    #[test]
    #[should_panic]
    fn oversized_scale_rejected() {
        WorkloadSpec {
            scale: 1.5,
            ..WorkloadSpec::new(WorkloadKind::Cnn)
        }
        .validate();
    }
}
