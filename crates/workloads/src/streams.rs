//! Reusable op-stream building blocks for the workload generators.

use crate::zipf::HotSetSampler;
use lunule_namespace::{InodeId, Namespace};
use lunule_sim::{MetaOp, OpStream};
use lunule_util::DetRng;
use std::sync::Arc;

/// Derives a per-client RNG seed from a workload master seed — a SplitMix64
/// step so neighbouring client ids do not correlate.
pub fn client_seed(master: u64, client: u64) -> u64 {
    let mut z = master ^ client.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sequentially reads a shared list of files once (scan-type workloads:
/// CNN preprocessing, NLP training) and optionally finishes by creating a
/// record file (the CNN pipeline's packed output).
#[derive(Clone)]
pub struct ScanStream {
    files: Arc<Vec<InodeId>>,
    pos: usize,
    /// `(output dir, size)` of the record file to create after the scan.
    record: Option<(InodeId, u64)>,
    record_done: bool,
}

impl ScanStream {
    /// Scan over `files`, optionally followed by a record-file create.
    pub fn new(files: Arc<Vec<InodeId>>, record: Option<(InodeId, u64)>) -> Self {
        ScanStream {
            files,
            pos: 0,
            record,
            record_done: false,
        }
    }
}

impl OpStream for ScanStream {
    fn next_op(&mut self, _ns: &Namespace) -> Option<MetaOp> {
        if self.pos < self.files.len() {
            let op = MetaOp::Read(self.files[self.pos]);
            self.pos += 1;
            return Some(op);
        }
        if let Some((dir, size)) = self.record {
            if !self.record_done {
                self.record_done = true;
                return Some(MetaOp::Create { parent: dir, size });
            }
        }
        None
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.files.len() as u64 + u64::from(self.record.is_some()))
    }

    fn try_clone_box(&self) -> Option<Box<dyn OpStream>> {
        Some(Box::new(self.clone()))
    }

    fn save_state(&self, e: &mut lunule_util::codec::Encoder) {
        e.put_usize(self.pos);
        e.put_bool(self.record_done);
    }

    fn load_state(
        &mut self,
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<(), lunule_util::codec::CodecError> {
        let pos = d.get_usize("scan_stream.pos")?;
        let record_done = d.get_bool("scan_stream.record_done")?;
        if pos > self.files.len() || (record_done && self.record.is_none()) {
            return Err(lunule_util::codec::CodecError::Invalid {
                what: "scan_stream.pos",
            });
        }
        self.pos = pos;
        self.record_done = record_done;
        Ok(())
    }
}

/// Replays a shared, pre-generated access trace in order (Web workload).
#[derive(Clone)]
pub struct ReplayStream {
    trace: Arc<Vec<InodeId>>,
    pos: usize,
}

impl ReplayStream {
    /// Replay of `trace` from the beginning.
    pub fn new(trace: Arc<Vec<InodeId>>) -> Self {
        ReplayStream { trace, pos: 0 }
    }
}

impl OpStream for ReplayStream {
    fn next_op(&mut self, _ns: &Namespace) -> Option<MetaOp> {
        let op = self.trace.get(self.pos).copied().map(MetaOp::Read);
        if op.is_some() {
            self.pos += 1;
        }
        op
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.trace.len() as u64)
    }

    fn try_clone_box(&self) -> Option<Box<dyn OpStream>> {
        Some(Box::new(self.clone()))
    }

    fn save_state(&self, e: &mut lunule_util::codec::Encoder) {
        e.put_usize(self.pos);
    }

    fn load_state(
        &mut self,
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<(), lunule_util::codec::CodecError> {
        let pos = d.get_usize("replay_stream.pos")?;
        if pos > self.trace.len() {
            return Err(lunule_util::codec::CodecError::Invalid {
                what: "replay_stream.pos",
            });
        }
        self.pos = pos;
        Ok(())
    }
}

/// Random reads over a private file set under the 80/20 rule
/// (Filebench-Zipfian workload).
#[derive(Clone)]
pub struct HotSetStream {
    files: Vec<InodeId>,
    sampler: HotSetSampler,
    rng: DetRng,
    remaining: u64,
}

impl HotSetStream {
    /// `ops` reads over `files`, 80 % of them on the first 20 %.
    pub fn new(files: Vec<InodeId>, ops: u64, seed: u64) -> Self {
        let sampler = HotSetSampler::new(files.len(), 0.2, 0.8);
        HotSetStream {
            files,
            sampler,
            rng: DetRng::seed_from_u64(seed),
            remaining: ops,
        }
    }
}

impl OpStream for HotSetStream {
    fn next_op(&mut self, _ns: &Namespace) -> Option<MetaOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let idx = self.sampler.sample(&mut self.rng);
        Some(MetaOp::Read(self.files[idx]))
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.remaining)
    }

    fn try_clone_box(&self) -> Option<Box<dyn OpStream>> {
        Some(Box::new(self.clone()))
    }

    fn save_state(&self, e: &mut lunule_util::codec::Encoder) {
        for word in self.rng.state() {
            e.put_u64(word);
        }
        e.put_u64(self.remaining);
    }

    fn load_state(
        &mut self,
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<(), lunule_util::codec::CodecError> {
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = d.get_u64("hotset_stream.rng")?;
        }
        let remaining = d.get_u64("hotset_stream.remaining")?;
        // A snapshot can only have drained ops, never added them; the
        // freshly built stream holds the configured total.
        if remaining > self.remaining {
            return Err(lunule_util::codec::CodecError::Invalid {
                what: "hotset_stream.remaining",
            });
        }
        self.rng = DetRng::from_state(state);
        self.remaining = remaining;
        Ok(())
    }
}

/// Endless-until-quota creates into a private directory (MDtest-create).
#[derive(Clone)]
pub struct CreateStream {
    parent: InodeId,
    remaining: u64,
    size: u64,
}

impl CreateStream {
    /// `count` creates of `size`-byte files under `parent`.
    pub fn new(parent: InodeId, count: u64, size: u64) -> Self {
        CreateStream {
            parent,
            remaining: count,
            size,
        }
    }
}

impl OpStream for CreateStream {
    fn next_op(&mut self, _ns: &Namespace) -> Option<MetaOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(MetaOp::Create {
            parent: self.parent,
            size: self.size,
        })
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.remaining)
    }

    fn try_clone_box(&self) -> Option<Box<dyn OpStream>> {
        Some(Box::new(self.clone()))
    }

    fn save_state(&self, e: &mut lunule_util::codec::Encoder) {
        e.put_u64(self.remaining);
    }

    fn load_state(
        &mut self,
        d: &mut lunule_util::codec::Decoder<'_>,
    ) -> Result<(), lunule_util::codec::CodecError> {
        let remaining = d.get_u64("create_stream.remaining")?;
        if remaining > self.remaining {
            return Err(lunule_util::codec::CodecError::Invalid {
                what: "create_stream.remaining",
            });
        }
        self.remaining = remaining;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns_with_files(n: usize) -> (Namespace, InodeId, Vec<InodeId>) {
        let mut ns = Namespace::new();
        let d = ns.mkdir(InodeId::ROOT, "d").unwrap();
        let files = (0..n)
            .map(|i| ns.create_file(d, &format!("f{i}"), 1).unwrap())
            .collect();
        (ns, d, files)
    }

    #[test]
    fn scan_reads_everything_then_creates_record() {
        let (ns, d, files) = ns_with_files(5);
        let mut s = ScanStream::new(Arc::new(files.clone()), Some((d, 100)));
        for f in &files {
            assert_eq!(s.next_op(&ns), Some(MetaOp::Read(*f)));
        }
        assert_eq!(
            s.next_op(&ns),
            Some(MetaOp::Create {
                parent: d,
                size: 100
            })
        );
        assert_eq!(s.next_op(&ns), None);
    }

    #[test]
    fn scan_without_record() {
        let (ns, _d, files) = ns_with_files(3);
        let mut s = ScanStream::new(Arc::new(files), None);
        assert_eq!(s.len_hint(), Some(3));
        for _ in 0..3 {
            assert!(s.next_op(&ns).is_some());
        }
        assert_eq!(s.next_op(&ns), None);
    }

    #[test]
    fn replay_follows_trace() {
        let (ns, _d, files) = ns_with_files(3);
        let trace = Arc::new(vec![files[2], files[0], files[2]]);
        let mut s = ReplayStream::new(trace);
        assert_eq!(s.next_op(&ns), Some(MetaOp::Read(files[2])));
        assert_eq!(s.next_op(&ns), Some(MetaOp::Read(files[0])));
        assert_eq!(s.next_op(&ns), Some(MetaOp::Read(files[2])));
        assert_eq!(s.next_op(&ns), None);
    }

    #[test]
    fn hotset_stream_respects_quota_and_skews() {
        let (ns, _d, files) = ns_with_files(100);
        let mut s = HotSetStream::new(files.clone(), 1000, 42);
        let mut hot_hits = 0;
        let mut count = 0;
        while let Some(MetaOp::Read(ino)) = s.next_op(&ns) {
            count += 1;
            if files[..20].contains(&ino) {
                hot_hits += 1;
            }
        }
        assert_eq!(count, 1000);
        assert!(hot_hits > 700, "hot share too low: {hot_hits}/1000");
    }

    #[test]
    fn create_stream_counts_down() {
        let (ns, d, _) = ns_with_files(1);
        let mut s = CreateStream::new(d, 2, 0);
        assert!(matches!(s.next_op(&ns), Some(MetaOp::Create { .. })));
        assert!(matches!(s.next_op(&ns), Some(MetaOp::Create { .. })));
        assert_eq!(s.next_op(&ns), None);
    }

    /// Each stream type resumes exactly where it left off after a
    /// save/load cycle into a freshly built instance, and rejects cursors
    /// that claim more progress than the configuration allows.
    #[test]
    fn stream_states_round_trip_mid_drain() {
        use lunule_util::codec::{CodecError, Decoder, Encoder};
        let (ns, d, files) = ns_with_files(10);

        // Drains `burn` ops from `stream`, round-trips its state into
        // `fresh`, and checks both produce the identical remaining tail.
        fn check(ns: &Namespace, mut stream: impl OpStream, mut fresh: impl OpStream, burn: usize) {
            for _ in 0..burn {
                stream.next_op(ns);
            }
            let mut e = Encoder::new();
            stream.save_state(&mut e);
            let bytes = e.into_bytes();
            let mut dec = Decoder::new(&bytes);
            fresh.load_state(&mut dec).unwrap();
            dec.finish().unwrap();
            loop {
                let (a, b) = (stream.next_op(ns), fresh.next_op(ns));
                assert_eq!(a, b, "restored stream diverged");
                if a.is_none() {
                    break;
                }
            }
        }

        let shared = Arc::new(files.clone());
        check(
            &ns,
            ScanStream::new(shared.clone(), Some((d, 64))),
            ScanStream::new(shared.clone(), Some((d, 64))),
            10, // mid record-phase: all reads done, create pending
        );
        check(
            &ns,
            ReplayStream::new(shared.clone()),
            ReplayStream::new(shared.clone()),
            4,
        );
        check(
            &ns,
            HotSetStream::new(files.clone(), 50, 7),
            HotSetStream::new(files.clone(), 50, 7),
            23,
        );
        check(
            &ns,
            CreateStream::new(d, 8, 16),
            CreateStream::new(d, 8, 16),
            3,
        );

        // Impossible progress is refused: more ops remaining than the
        // configuration ever had.
        let mut e = Encoder::new();
        e.put_u64(99);
        let bytes = e.into_bytes();
        let mut s = CreateStream::new(d, 8, 16);
        assert!(matches!(
            s.load_state(&mut Decoder::new(&bytes)),
            Err(CodecError::Invalid {
                what: "create_stream.remaining"
            })
        ));
        // A scan cursor past the file list is refused.
        let mut e = Encoder::new();
        e.put_usize(11);
        e.put_bool(false);
        let bytes = e.into_bytes();
        let mut s = ScanStream::new(shared, None);
        assert!(s.load_state(&mut Decoder::new(&bytes)).is_err());
    }

    #[test]
    fn client_seed_spreads() {
        let a = client_seed(1, 0);
        let b = client_seed(1, 1);
        let c = client_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
