//! Trace-file workloads: record a run's access sequence and replay it.
//!
//! The paper's Web workload replays a real Apache access log; when users
//! have such a trace, this module maps it onto a namespace. The format is
//! deliberately plain — one path per line, `#` comments allowed — so logs
//! can be converted with standard tools. Paths that name directories that
//! do not exist yet are created on load; repeated lines become repeated
//! accesses (the temporal-locality signal).

use crate::streams::ReplayStream;
use lunule_namespace::{InodeId, Namespace};
use lunule_sim::OpStream;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A parsed trace: the namespace it references and the access sequence.
#[derive(Debug)]
pub struct LoadedTrace {
    /// Inode ids in access order (repeats preserved).
    pub accesses: Vec<InodeId>,
    /// How many distinct files the trace touches.
    pub distinct_files: usize,
}

/// Parses a path-per-line trace into `ns`, creating every referenced file
/// (with `file_size` bytes) and its ancestor directories on first sight.
///
/// Lines are `/`-separated absolute paths; empty lines and lines starting
/// with `#` are skipped. Returns the access sequence over the materialised
/// inodes.
pub fn load_trace(ns: &mut Namespace, text: &str, file_size: u64) -> LoadedTrace {
    let mut by_path: BTreeMap<String, InodeId> = BTreeMap::new();
    let mut accesses = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let id = *by_path
            .entry(line.to_string())
            .or_insert_with(|| materialise(ns, line, file_size));
        accesses.push(id);
    }
    LoadedTrace {
        distinct_files: by_path.len(),
        accesses,
    }
}

/// Ensures `path` exists in `ns` (creating directories and the final file
/// as needed) and returns the file's inode.
fn materialise(ns: &mut Namespace, path: &str, file_size: u64) -> InodeId {
    let mut cur = InodeId::ROOT;
    let parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
    assert!(!parts.is_empty(), "trace lines must name a file");
    for dir in &parts[..parts.len() - 1] {
        cur = match ns.child_by_name(cur, dir) {
            Some(existing) => existing,
            None => ns.mkdir_total(cur, dir),
        };
    }
    let leaf = parts[parts.len() - 1];
    match ns.child_by_name(cur, leaf) {
        Some(existing) => existing,
        None => ns.create_file_total(cur, leaf, file_size),
    }
}

/// Builds one replay stream per client over a shared loaded trace (every
/// client replays the same sequence, like the paper's Web clients).
pub fn trace_streams(trace: &LoadedTrace, clients: usize) -> Vec<Box<dyn OpStream>> {
    let shared = Arc::new(trace.accesses.clone());
    (0..clients)
        .map(|_| Box::new(ReplayStream::new(Arc::clone(&shared))) as Box<dyn OpStream>)
        .collect()
}

/// Renders an access sequence back into the path-per-line format, the
/// inverse of [`load_trace`] (useful for exporting simulator-generated
/// workloads as portable trace files).
pub fn dump_trace(ns: &Namespace, accesses: &[InodeId]) -> String {
    let mut out = String::new();
    for ino in accesses {
        out.push_str(&ns.path_string(*ino));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lunule_sim::MetaOp;

    const SAMPLE: &str = "\
# departmental web server, excerpt
/www/index.html
/www/docs/guide.pdf
/www/index.html
/www/img/logo.png

/www/index.html
";

    #[test]
    fn load_creates_namespace_and_preserves_repeats() {
        let mut ns = Namespace::new();
        let trace = load_trace(&mut ns, SAMPLE, 1000);
        assert_eq!(trace.accesses.len(), 5);
        assert_eq!(trace.distinct_files, 3);
        assert_eq!(ns.file_count(), 3);
        // /www, /www/docs, /www/img + root
        assert_eq!(ns.dir_count(), 4);
        // Repeats hit the same inode.
        assert_eq!(trace.accesses[0], trace.accesses[2]);
        assert_eq!(trace.accesses[0], trace.accesses[4]);
        assert!(ns.invariants_hold());
    }

    #[test]
    fn streams_replay_in_order() {
        let mut ns = Namespace::new();
        let trace = load_trace(&mut ns, SAMPLE, 1);
        let mut streams = trace_streams(&trace, 2);
        for expected in &trace.accesses {
            assert_eq!(streams[0].next_op(&ns), Some(MetaOp::Read(*expected)));
        }
        assert_eq!(streams[0].next_op(&ns), None);
        // Second client replays the same first access.
        assert_eq!(
            streams[1].next_op(&ns),
            Some(MetaOp::Read(trace.accesses[0]))
        );
    }

    #[test]
    fn dump_roundtrips() {
        let mut ns = Namespace::new();
        let trace = load_trace(&mut ns, SAMPLE, 1);
        let dumped = dump_trace(&ns, &trace.accesses);
        let mut ns2 = Namespace::new();
        let trace2 = load_trace(&mut ns2, &dumped, 1);
        assert_eq!(trace2.accesses.len(), trace.accesses.len());
        assert_eq!(trace2.distinct_files, trace.distinct_files);
        let paths1: Vec<String> = trace.accesses.iter().map(|i| ns.path_string(*i)).collect();
        let paths2: Vec<String> = trace2
            .accesses
            .iter()
            .map(|i| ns2.path_string(*i))
            .collect();
        assert_eq!(paths1, paths2);
    }

    #[test]
    #[should_panic]
    fn bare_root_line_rejected() {
        let mut ns = Namespace::new();
        load_trace(&mut ns, "/", 1);
    }
}
