//! The Web trace-replay workload.
//!
//! Models the replay of a departmental web server's access log: ~302k files
//! spread over a deep document tree, ~8 M requests whose popularity follows
//! a Zipf law (web page popularity is classically Zipfian), replayed by
//! every client in order. Repeated requests to popular pages give this
//! workload strong *temporal* locality — the pattern the stock CephFS
//! balancer handles well (Fig. 6d of the paper).

use crate::spec::WorkloadSpec;
use crate::streams::{client_seed, ReplayStream};
use crate::zipf::ZipfSampler;
use lunule_namespace::{build_deep_tree, InodeId, Namespace};
use lunule_sim::OpStream;
use lunule_util::DetRng;
use std::sync::Arc;

/// Served page size used by the data-path model, bytes.
pub const WEB_FILE_SIZE: u64 = 24_000;

/// Zipf exponent of page popularity.
pub const WEB_ZIPF_EXPONENT: f64 = 1.0;

/// Builder for the Web workload.
#[derive(Clone, Copy, Debug)]
pub struct WebWorkload {
    /// Depth of the document tree below its root.
    pub levels: usize,
    /// Subdirectories per internal directory.
    pub fanout: usize,
    /// Total files across the tree (paper: 302k).
    pub total_files: usize,
    /// Requests each client replays (paper: 8.06 M over 100 clients).
    pub requests_per_client: usize,
    /// Concurrent clients.
    pub clients: usize,
    /// Master seed.
    pub seed: u64,
}

impl WebWorkload {
    /// Derives scaled parameters from a spec.
    pub fn from_spec(spec: &WorkloadSpec) -> Self {
        WebWorkload {
            levels: 3,
            fanout: 8,
            total_files: ((302_000.0 * spec.scale) as usize).max(512),
            requests_per_client: ((8_060_000.0 / spec.clients as f64 * spec.scale) as usize)
                .max(100),
            clients: spec.clients,
            seed: spec.seed,
        }
    }

    /// Builds the document tree and the shared trace; returns streams.
    pub fn build(&self, ns: &mut Namespace) -> Vec<Box<dyn OpStream>> {
        let leaves = self.fanout.pow(self.levels as u32);
        let files_per_leaf = (self.total_files / leaves).max(1);
        let dataset = build_deep_tree(
            ns,
            "www",
            self.levels,
            self.fanout,
            files_per_leaf,
            WEB_FILE_SIZE,
        );
        // Popularity ranks are assigned to files in shuffled order so hot
        // pages scatter across the tree rather than clustering in one leaf.
        let mut files: Vec<InodeId> = dataset.files_in_scan_order();
        let mut rng = DetRng::seed_from_u64(client_seed(self.seed, 0xF11E));
        rng.shuffle(&mut files);
        let sampler = ZipfSampler::new(files.len(), WEB_ZIPF_EXPONENT);
        let mut trace_rng = DetRng::seed_from_u64(client_seed(self.seed, 0x7ACE));
        let trace: Arc<Vec<InodeId>> = Arc::new(
            (0..self.requests_per_client)
                .map(|_| files[sampler.sample(&mut trace_rng)])
                .collect(),
        );
        (0..self.clients)
            .map(|_| Box::new(ReplayStream::new(Arc::clone(&trace))) as Box<dyn OpStream>)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{WorkloadKind, WorkloadSpec};
    use lunule_sim::MetaOp;
    use std::collections::HashMap;

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec {
            kind: WorkloadKind::Web,
            clients: 2,
            scale: 0.005,
            seed: 7,
        }
    }

    #[test]
    fn trace_is_shared_and_zipfian() {
        let w = WebWorkload::from_spec(&small_spec());
        let mut ns = Namespace::new();
        let mut streams = w.build(&mut ns);
        let mut counts: HashMap<InodeId, u32> = HashMap::new();
        while let Some(MetaOp::Read(ino)) = streams[0].next_op(&ns) {
            *counts.entry(ino).or_default() += 1;
        }
        let total: u32 = counts.values().sum();
        assert_eq!(total as usize, w.requests_per_client);
        // Zipf popularity: the hottest page is requested many times.
        let max = counts.values().max().copied().unwrap();
        assert!(max > 3, "temporal locality requires repeats, max={max}");
        // Both clients replay the identical trace.
        let first_client_1 = streams[1].next_op(&ns);
        assert!(first_client_1.is_some());
    }

    #[test]
    fn tree_is_deep() {
        let w = WebWorkload::from_spec(&small_spec());
        let mut ns = Namespace::new();
        w.build(&mut ns);
        // Some file must sit at depth levels + 2 (root/www/l0/l1/l2/file).
        let deep = (0..ns.len())
            .map(lunule_namespace::InodeId::from_index)
            .filter(|i| !ns.inode(*i).is_dir())
            .map(|i| ns.inode(i).depth())
            .max()
            .unwrap();
        assert_eq!(deep as usize, w.levels + 2);
    }

    #[test]
    fn deterministic_trace() {
        let build_trace = || {
            let w = WebWorkload::from_spec(&small_spec());
            let mut ns = Namespace::new();
            let mut s = w.build(&mut ns);
            let mut out = Vec::new();
            while let Some(MetaOp::Read(i)) = s[0].next_op(&ns) {
                out.push(i);
            }
            out
        };
        assert_eq!(build_trace(), build_trace());
    }
}
