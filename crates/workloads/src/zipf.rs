//! Seeded popularity samplers: true Zipf and the 80/20 hot-set rule.

use lunule_util::DetRng;

/// Samples indices `0..n` from a Zipf(s) popularity distribution (rank 0 is
/// the most popular item) using a precomputed cumulative table — O(log n)
/// per sample, exact, deterministic under a seeded RNG.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` items with exponent `s > 0`.
    ///
    /// # Panics
    /// Panics when `n == 0` or `s <= 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "cannot sample from zero items");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        ZipfSampler { cumulative }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when the sampler holds no items (never: the constructor
    /// rejects `n == 0`); part of the `len`/`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u = rng.gen_f64();
        self.cumulative
            .partition_point(|c| *c < u)
            .min(self.cumulative.len() - 1)
    }
}

/// The Filebench-style 80/20 rule: with probability `hot_weight` draw
/// uniformly from the first `hot_fraction` share of items, otherwise from
/// the remainder ("80 % of requests are touching 20 % of files").
#[derive(Clone, Copy, Debug)]
pub struct HotSetSampler {
    n: usize,
    hot_n: usize,
    hot_weight: f64,
}

impl HotSetSampler {
    /// Builds the sampler over `n` items.
    ///
    /// # Panics
    /// Panics when `n == 0` or the fractions are not in `(0, 1)`.
    pub fn new(n: usize, hot_fraction: f64, hot_weight: f64) -> Self {
        assert!(n > 0, "cannot sample from zero items");
        assert!(
            (0.0..1.0).contains(&hot_fraction) && hot_fraction > 0.0,
            "hot fraction must be in (0, 1)"
        );
        assert!(
            (0.0..=1.0).contains(&hot_weight),
            "hot weight must be in [0, 1]"
        );
        HotSetSampler {
            n,
            hot_n: ((n as f64 * hot_fraction).round() as usize).clamp(1, n),
            hot_weight,
        }
    }

    /// Draws one index.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        if self.n == self.hot_n || rng.gen_f64() < self.hot_weight {
            rng.gen_range(0..self.hot_n)
        } else {
            rng.gen_range(self.hot_n..self.n)
        }
    }

    /// Size of the hot set.
    pub fn hot_len(&self) -> usize {
        self.hot_n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_rank_zero_dominates() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = DetRng::seed_from_u64(7);
        let mut counts = vec![0u32; 1000];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[999] * 5);
        // Harmonic: rank 0 gets about 1/H(1000) ~ 13% of draws.
        assert!(
            counts[0] > 1_500 && counts[0] < 4_500,
            "rank0={}",
            counts[0]
        );
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = ZipfSampler::new(10, 0.8);
        let mut rng = DetRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn hotset_obeys_eighty_twenty() {
        let h = HotSetSampler::new(1000, 0.2, 0.8);
        assert_eq!(h.hot_len(), 200);
        let mut rng = DetRng::seed_from_u64(11);
        let hot_hits = (0..50_000).filter(|_| h.sample(&mut rng) < 200).count();
        let share = hot_hits as f64 / 50_000.0;
        assert!((share - 0.8).abs() < 0.02, "hot share {share}");
    }

    #[test]
    fn hotset_single_item() {
        let h = HotSetSampler::new(1, 0.5, 0.8);
        let mut rng = DetRng::seed_from_u64(1);
        assert_eq!(h.sample(&mut rng), 0);
    }

    #[test]
    fn determinism() {
        let z = ZipfSampler::new(100, 1.0);
        let draw = |seed| {
            let mut rng = DetRng::seed_from_u64(seed);
            (0..50).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    #[test]
    #[should_panic]
    fn zipf_rejects_empty() {
        ZipfSampler::new(0, 1.0);
    }
}
