//! The Filebench-Zipfian read workload.
//!
//! Each client owns a private, non-shared directory of 10k files and reads
//! them at random under the 80/20 rule (80% of requests touch 20% of the
//! files). This is the canonical temporal-locality benchmark: the hot sets
//! are stable, so hotness-based balancing is *supposed* to work here — the
//! paper uses it to show that even the favourable case suffers from the
//! stock balancer's trigger and over-migration problems (Fig. 3a/4a).

use crate::spec::WorkloadSpec;
use crate::streams::{client_seed, HotSetStream};
use lunule_namespace::{build_private_dirs, Namespace};
use lunule_sim::OpStream;

/// Per-file size used by the data-path model, bytes.
pub const ZIPF_FILE_SIZE: u64 = 16_384;

/// Builder for the Filebench-Zipfian workload.
#[derive(Clone, Copy, Debug)]
pub struct ZipfReadWorkload {
    /// Files in each client's private directory (paper: 10_000).
    pub files_per_client: usize,
    /// Random reads each client performs.
    pub ops_per_client: u64,
    /// Concurrent clients.
    pub clients: usize,
    /// Master seed.
    pub seed: u64,
}

impl ZipfReadWorkload {
    /// Derives scaled parameters from a spec.
    pub fn from_spec(spec: &WorkloadSpec) -> Self {
        ZipfReadWorkload {
            files_per_client: ((10_000.0 * spec.scale) as usize).max(50),
            ops_per_client: ((120_000.0 * spec.scale) as u64).max(500),
            clients: spec.clients,
            seed: spec.seed,
        }
    }

    /// Builds the private directories and returns per-client streams.
    pub fn build(&self, ns: &mut Namespace) -> Vec<Box<dyn OpStream>> {
        let dataset = build_private_dirs(
            ns,
            "filebench",
            self.clients,
            self.files_per_client,
            ZIPF_FILE_SIZE,
        );
        dataset
            .dirs
            .iter()
            .enumerate()
            .map(|(c, (_dir, files))| {
                Box::new(HotSetStream::new(
                    files.clone(),
                    self.ops_per_client,
                    client_seed(self.seed, c as u64),
                )) as Box<dyn OpStream>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{WorkloadKind, WorkloadSpec};
    use lunule_sim::MetaOp;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            kind: WorkloadKind::ZipfRead,
            clients: 3,
            scale: 0.01,
            seed: 5,
        }
    }

    #[test]
    fn private_dirs_are_disjoint() {
        let w = ZipfReadWorkload::from_spec(&spec());
        let mut ns = Namespace::new();
        let mut streams = w.build(&mut ns);
        // Collect the set of parents each client touches; they must differ.
        let mut parents = Vec::new();
        for s in &mut streams {
            let Some(MetaOp::Read(ino)) = s.next_op(&ns) else {
                panic!("stream must produce reads");
            };
            parents.push(ns.inode(ino).parent().unwrap());
        }
        parents.dedup();
        assert_eq!(parents.len(), 3, "clients must not share directories");
    }

    #[test]
    fn op_budget_respected() {
        let w = ZipfReadWorkload::from_spec(&spec());
        let mut ns = Namespace::new();
        let mut streams = w.build(&mut ns);
        let mut n = 0u64;
        while streams[0].next_op(&ns).is_some() {
            n += 1;
        }
        assert_eq!(n, w.ops_per_client);
    }

    #[test]
    fn different_clients_draw_differently() {
        let w = ZipfReadWorkload::from_spec(&spec());
        let mut ns = Namespace::new();
        let mut streams = w.build(&mut ns);
        let seq = |s: &mut Box<dyn OpStream>, ns: &Namespace| {
            (0..20)
                .filter_map(|_| match s.next_op(ns) {
                    Some(MetaOp::Read(i)) => Some(i.index() % w.files_per_client),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        let (a, b) = {
            let mut it = streams.iter_mut();
            (seq(it.next().unwrap(), &ns), seq(it.next().unwrap(), &ns))
        };
        assert_ne!(a, b, "per-client seeds must differ");
    }
}
