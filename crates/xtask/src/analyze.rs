//! The deeper analysis passes: determinism auditor, crate-layering
//! checker, and cast-safety lint.
//!
//! ## Determinism auditor (`det-*`)
//!
//! Every figure this reproduction ships depends on byte-identical
//! same-seed runs. The auditor bans, in library-crate code (tests exempt):
//!
//! - `HashMap` / `HashSet` (`det-collection`) — their iteration order is
//!   randomized per process (`RandomState`), so any iteration that reaches
//!   output, telemetry, or balancer decisions breaks reproducibility; use
//!   `BTreeMap` / `BTreeSet` or index-keyed `Vec`s instead;
//! - `SystemTime` / `Instant` (`det-clock`) — wall-clock reads in logic
//!   paths leak real time into results; the telemetry clock is derived
//!   from `(tick, seq)` instead;
//! - `std::env` (`det-env`) — environment reads make runs depend on
//!   ambient state; configuration flows through explicit config structs;
//! - `RandomState` (`det-random`) — OS-seeded hashing.
//!
//! Sanctioned exceptions (e.g. the worker pool's `LUNULE_JOBS` default,
//! which by construction cannot change results) are waived in
//! `lint-allow.txt` and stale-checked like every other waiver.
//!
//! ## Crate-layering checker (`layering`)
//!
//! [`LAYERING`] declares the workspace dependency DAG. The checker fails
//! on back-edges: a `[dependencies]` entry (or a `lunule_*` source
//! reference) not in the declared allowed set, a crate missing from the
//! table, or a cycle in the table itself.
//!
//! ## Cast-safety lint (`cast-lossy`)
//!
//! Numeric `as` casts silently truncate, wrap, or round. In hot-path
//! crates every `expr as <numeric>` must either carry a token-level
//! widening proof (literal value/suffix that provably fits, or a cast
//! chain whose previous target widens into the new one) or an inline
//! waiver comment `// as-ok: <reason>` on the same or preceding line.
//! Waiver comments that no longer cover a cast are themselves findings
//! (`stale-cast-waiver`).

use crate::lexer::{lex, literal_suffix, TokKind};
use crate::lint::cfg_test_mask;
use crate::{
    collect_rs_files, filter_with_stale_check, rel_path, AllowEntry, Finding, HOT_PATH_CRATES,
    LIB_CRATES,
};
use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

/// Check ids owned by the analyze command (used for stale-waiver
/// detection against `lint-allow.txt`).
pub const ANALYZE_CHECKS: &[&str] = &[
    "det-collection",
    "det-clock",
    "det-env",
    "det-random",
    "cast-lossy",
    "layering",
];

/// One crate's position in the layering DAG: its name, source directory,
/// and the complete set of workspace crates it may depend on.
#[derive(Debug)]
pub struct CrateLayer {
    /// Crate name as it appears in `Cargo.toml` (`lunule-core`, `xtask`).
    pub name: &'static str,
    /// Directory of the crate relative to the workspace root.
    pub dir: &'static str,
    /// Workspace crates this crate may list under `[dependencies]`.
    pub deps: &'static [&'static str],
}

/// The workspace layering DAG, lowest layer first. A crate may depend only
/// on the crates listed — the checker fails on back-edges and on crates
/// absent from this table, so adding a dependency is a conscious,
/// reviewed layering decision.
///
/// ```text
/// util ─┬─ namespace ─┬─ faults ──────────┐
///       ├─ telemetry ─┴─ core ─ verify ── sim ── workloads ─┬─ bench
///       └─ snapshot ───────────────────────┘ (facade atop all) └─ daemon
/// ```
pub const LAYERING: &[CrateLayer] = &[
    CrateLayer {
        name: "lunule-util",
        dir: "crates/util",
        deps: &[],
    },
    CrateLayer {
        name: "lunule-namespace",
        dir: "crates/namespace",
        deps: &["lunule-util"],
    },
    CrateLayer {
        name: "lunule-telemetry",
        dir: "crates/telemetry",
        deps: &["lunule-util"],
    },
    CrateLayer {
        name: "lunule-snapshot",
        dir: "crates/snapshot",
        deps: &["lunule-util"],
    },
    CrateLayer {
        name: "lunule-faults",
        dir: "crates/faults",
        deps: &["lunule-namespace", "lunule-util"],
    },
    CrateLayer {
        name: "lunule-core",
        dir: "crates/core",
        deps: &["lunule-namespace", "lunule-telemetry", "lunule-util"],
    },
    CrateLayer {
        name: "lunule-verify",
        dir: "crates/verify",
        deps: &["lunule-core", "lunule-namespace", "lunule-util"],
    },
    CrateLayer {
        name: "lunule-sim",
        dir: "crates/sim",
        deps: &[
            "lunule-core",
            "lunule-faults",
            "lunule-namespace",
            "lunule-snapshot",
            "lunule-telemetry",
            "lunule-util",
            "lunule-verify",
        ],
    },
    CrateLayer {
        name: "lunule-workloads",
        dir: "crates/workloads",
        deps: &["lunule-namespace", "lunule-sim", "lunule-util"],
    },
    CrateLayer {
        name: "lunule-daemon",
        dir: "crates/daemon",
        deps: &[
            "lunule-core",
            "lunule-faults",
            "lunule-namespace",
            "lunule-sim",
            "lunule-snapshot",
            "lunule-telemetry",
            "lunule-util",
            "lunule-workloads",
        ],
    },
    CrateLayer {
        name: "lunule-bench",
        dir: "crates/bench",
        deps: &[
            "lunule-core",
            "lunule-daemon",
            "lunule-faults",
            "lunule-namespace",
            "lunule-sim",
            "lunule-snapshot",
            "lunule-telemetry",
            "lunule-util",
            "lunule-verify",
            "lunule-workloads",
        ],
    },
    CrateLayer {
        name: "xtask",
        dir: "crates/xtask",
        deps: &["lunule-util"],
    },
    CrateLayer {
        name: "lunule",
        dir: ".",
        deps: &[
            "lunule-core",
            "lunule-daemon",
            "lunule-faults",
            "lunule-namespace",
            "lunule-sim",
            "lunule-snapshot",
            "lunule-telemetry",
            "lunule-util",
            "lunule-verify",
            "lunule-workloads",
        ],
    },
];

/// Runs all three analysis passes over the workspace; returns unexempted
/// findings (plus stale-waiver findings for dead allowlist entries and
/// dead `as-ok` comments).
pub fn analyze_workspace(root: &Path, allow: &[AllowEntry]) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for krate in LIB_CRATES {
        let src_dir = root.join("crates").join(krate).join("src");
        for file in collect_rs_files(&src_dir)? {
            let text = fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
            findings.extend(determinism_scan(&rel_path(root, &file), &text));
        }
    }
    for krate in HOT_PATH_CRATES {
        let src_dir = root.join("crates").join(krate).join("src");
        for file in collect_rs_files(&src_dir)? {
            let text = fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
            findings.extend(cast_scan(&rel_path(root, &file), &text));
        }
    }
    findings.extend(layering_check(root)?);
    Ok(filter_with_stale_check(findings, allow, ANALYZE_CHECKS))
}

// ---------------------------------------------------------------------------
// Determinism auditor
// ---------------------------------------------------------------------------

/// Scans one library source file for determinism hazards (tests exempt).
pub fn determinism_scan(file: &str, text: &str) -> Vec<Finding> {
    let toks = lex(text);
    let in_test = cfg_test_mask(&toks);
    let lines: Vec<&str> = text.lines().collect();
    let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let mut findings = Vec::new();
    for (si, &ti) in sig.iter().enumerate() {
        if in_test[ti] {
            continue;
        }
        let t = &toks[ti];
        if t.kind != TokKind::Ident {
            continue;
        }
        let check = match t.text {
            "HashMap" | "HashSet" => Some("det-collection"),
            "SystemTime" | "Instant" => Some("det-clock"),
            "RandomState" => Some("det-random"),
            "env" => {
                // `std :: env` — other `env` idents (variables, `env!`) are
                // not ambient-state reads.
                let prev2 = si.checked_sub(2).map(|p| &toks[sig[p]]);
                let prev1 = si.checked_sub(1).map(|p| &toks[sig[p]]);
                let from_std = prev1.is_some_and(|t| t.kind == TokKind::Punct && t.text == "::")
                    && prev2.is_some_and(|t| t.kind == TokKind::Ident && t.text == "std");
                from_std.then_some("det-env")
            }
            _ => None,
        };
        if let Some(check) = check {
            findings.push(Finding {
                file: file.to_string(),
                line: t.line,
                check,
                excerpt: lines.get(t.line - 1).copied().unwrap_or(t.text).to_string(),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Cast-safety lint
// ---------------------------------------------------------------------------

/// A numeric type as seen by the cast checker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Num {
    /// Unsigned integer with the given bit width.
    U(u32),
    /// Signed integer with the given bit width.
    I(u32),
    /// Float with the given mantissa width (f32: 24, f64: 53).
    F(u32),
}

/// Numeric type named by an identifier, if any. `usize`/`isize` are
/// treated as 64-bit: the supported targets (and every machine the figures
/// are produced on) are 64-bit, and a 32-bit port would make casts *less*
/// safe, never more.
fn numeric_type(name: &str) -> Option<Num> {
    Some(match name {
        "u8" => Num::U(8),
        "u16" => Num::U(16),
        "u32" => Num::U(32),
        "u64" | "usize" => Num::U(64),
        "u128" => Num::U(128),
        "i8" => Num::I(8),
        "i16" => Num::I(16),
        "i32" => Num::I(32),
        "i64" | "isize" => Num::I(64),
        "i128" => Num::I(128),
        "f32" => Num::F(24),
        "f64" => Num::F(53),
        _ => return None,
    })
}

/// True when every value of `src` is exactly representable in `dst`
/// (widening: no truncation, no sign change, no rounding).
fn widens(src: Num, dst: Num) -> bool {
    match (src, dst) {
        (Num::U(s), Num::U(d)) => s <= d,
        (Num::U(s), Num::I(d)) => s < d,
        (Num::I(s), Num::I(d)) => s <= d,
        (Num::I(_), Num::U(_)) => false,
        (Num::U(s), Num::F(m)) => s <= m,
        (Num::I(s), Num::F(m)) => s - 1 <= m,
        (Num::F(s), Num::F(d)) => s <= d,
        (Num::F(_), _) => false,
    }
}

/// True when the integer literal value `v` is exactly representable in
/// `dst` (e.g. `255 as u8`, `1 as f64`).
fn literal_fits(v: u128, dst: Num) -> bool {
    match dst {
        Num::U(b) => b >= 128 || v < (1u128 << b),
        Num::I(b) => v < (1u128 << (b - 1)),
        Num::F(m) => v <= (1u128 << m),
    }
}

/// Parses a decimal / hex / octal / binary integer literal token value.
fn literal_value(text: &str) -> Option<u128> {
    let suffix = literal_suffix(text);
    let raw = text[..text.len() - suffix.len()].replace('_', "");
    let raw = raw.as_str();
    if let Some(hex) = raw.strip_prefix("0x") {
        u128::from_str_radix(hex, 16).ok()
    } else if let Some(oct) = raw.strip_prefix("0o") {
        u128::from_str_radix(oct, 8).ok()
    } else if let Some(bin) = raw.strip_prefix("0b") {
        u128::from_str_radix(bin, 2).ok()
    } else {
        raw.parse().ok()
    }
}

/// Scans one hot-path source file for lossy numeric `as` casts (tests
/// exempt). A cast passes without a waiver when the token stream proves it
/// widening:
///
/// - the cast operand is an integer literal whose value fits the target
///   exactly (`255 as u8`, `1 as f64`);
/// - the operand carries a type suffix that widens into the target
///   (`7u32 as u64`);
/// - the cast extends a chain whose previous target widens into the new
///   one (`x as u32 as u64` — the second cast is safe whatever `x` is).
///
/// Anything else needs `// as-ok: <reason>` on the same or the preceding
/// line. `as-ok` comments covering no cast are reported as
/// `stale-cast-waiver`.
pub fn cast_scan(file: &str, text: &str) -> Vec<Finding> {
    let toks = lex(text);
    let in_test = cfg_test_mask(&toks);
    let lines: Vec<&str> = text.lines().collect();
    let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    // Lines carrying an `as-ok:` waiver comment.
    let waiver_lines: BTreeSet<usize> = toks
        .iter()
        .filter(|t| t.is_comment() && t.text.contains("as-ok:"))
        .map(|t| t.line)
        .collect();
    let mut cast_lines: BTreeSet<usize> = BTreeSet::new();
    let mut findings = Vec::new();
    for (si, &ti) in sig.iter().enumerate() {
        let t = &toks[ti];
        if !(t.kind == TokKind::Ident && t.text == "as") {
            continue;
        }
        let Some(&next_ti) = sig.get(si + 1) else {
            continue;
        };
        let next = &toks[next_ti];
        let Some(dst) = (next.kind == TokKind::Ident)
            .then(|| numeric_type(next.text))
            .flatten()
        else {
            continue;
        };
        cast_lines.insert(t.line);
        if in_test[ti] {
            continue;
        }
        let prev = si.checked_sub(1).map(|p| &toks[sig[p]]);
        let prev2 = si.checked_sub(2).map(|p| &toks[sig[p]]);
        let proven = match prev {
            // `7u32 as u64` / `255 as u8` / `1.5 as f64`.
            Some(p) if matches!(p.kind, TokKind::Int | TokKind::Float) => {
                let suffix = literal_suffix(p.text);
                if let Some(src) = numeric_type(suffix) {
                    widens(src, dst)
                } else if p.kind == TokKind::Int {
                    literal_value(p.text).is_some_and(|v| literal_fits(v, dst))
                } else {
                    // Unsuffixed float literal: defaults to f64.
                    widens(Num::F(53), dst)
                }
            }
            // `… as u32 as u64`: the previous cast target is the source.
            Some(p) if p.kind == TokKind::Ident => match numeric_type(p.text) {
                Some(src) if prev2.is_some_and(|q| q.kind == TokKind::Ident && q.text == "as") => {
                    widens(src, dst)
                }
                _ => false,
            },
            _ => false,
        };
        let waived =
            waiver_lines.contains(&t.line) || (t.line > 1 && waiver_lines.contains(&(t.line - 1)));
        if !proven && !waived {
            findings.push(Finding {
                file: file.to_string(),
                line: t.line,
                check: "cast-lossy",
                excerpt: lines.get(t.line - 1).copied().unwrap_or(t.text).to_string(),
            });
        }
    }
    // A waiver comment is live when a numeric cast sits on its own line or
    // the one after it (trailing and comment-above styles).
    for &w in &waiver_lines {
        if !cast_lines.contains(&w) && !cast_lines.contains(&(w + 1)) {
            findings.push(Finding {
                file: file.to_string(),
                line: w,
                check: "stale-cast-waiver",
                excerpt: format!("`as-ok:` waiver on line {w} covers no numeric cast — remove it"),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Crate-layering checker
// ---------------------------------------------------------------------------

/// Workspace-crate dependencies declared in one `Cargo.toml`.
#[derive(Debug, Default, PartialEq)]
pub struct ManifestDeps {
    /// Crates under `[dependencies]` (including optional ones).
    pub normal: Vec<String>,
    /// Crates under `[dev-dependencies]`.
    pub dev: Vec<String>,
}

/// Extracts `lunule-*` dependency names from a `Cargo.toml` text. The
/// manifests in this workspace are flat `name = { workspace = true }`
/// entries, so a section-aware line parser is sufficient (and keeps xtask
/// std-only).
pub fn parse_manifest_deps(text: &str) -> ManifestDeps {
    let mut out = ManifestDeps::default();
    let mut section = String::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') && line.ends_with(']') {
            section = line[1..line.len() - 1].to_string();
            continue;
        }
        let Some((key, _)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        if !(key.starts_with("lunule-") || key == "lunule") {
            continue;
        }
        match section.as_str() {
            "dependencies" => out.normal.push(key.to_string()),
            "dev-dependencies" => out.dev.push(key.to_string()),
            _ => {}
        }
    }
    out
}

/// Source-level references to workspace crates: `lunule_foo` identifiers in
/// code tokens (comments, strings and doc examples excluded).
pub fn source_crate_refs(text: &str) -> BTreeSet<String> {
    lex(text)
        .iter()
        .filter(|t| t.kind == TokKind::Ident && t.text.starts_with("lunule_"))
        .map(|t| t.text.replace('_', "-"))
        .collect()
}

/// Checks the whole workspace against [`LAYERING`]: table self-consistency
/// (known names, acyclicity), every crate directory present in the table,
/// declared dependencies within the allowed set, and source references
/// covered by declared dependencies.
pub fn layering_check(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    // Table self-check: deps name known crates, and the DAG is acyclic.
    for layer in LAYERING {
        for dep in layer.deps {
            if !LAYERING.iter().any(|l| l.name == *dep) {
                return Err(format!(
                    "layering table: `{}` lists unknown crate `{dep}`",
                    layer.name
                ));
            }
        }
    }
    if topo_layers().is_none() {
        return Err("layering table contains a dependency cycle".to_string());
    }
    // Every crates/ directory must be in the table.
    let crates_dir = root.join("crates");
    let entries =
        fs::read_dir(&crates_dir).map_err(|e| format!("{}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", crates_dir.display()))?;
        if !entry.path().is_dir() {
            continue;
        }
        let dir = format!("crates/{}", entry.file_name().to_string_lossy());
        if !LAYERING.iter().any(|l| l.dir == dir) {
            findings.push(Finding {
                file: format!("{dir}/Cargo.toml"),
                line: 1,
                check: "layering",
                excerpt: format!(
                    "crate directory `{dir}` is not in the layering table — place it in the DAG"
                ),
            });
        }
    }
    for layer in LAYERING {
        let manifest_path = root.join(layer.dir).join("Cargo.toml");
        let manifest_rel = format!(
            "{}Cargo.toml",
            if layer.dir == "." {
                String::new()
            } else {
                format!("{}/", layer.dir)
            }
        );
        let text = fs::read_to_string(&manifest_path)
            .map_err(|e| format!("{}: {e}", manifest_path.display()))?;
        let deps = parse_manifest_deps(&text);
        for dep in &deps.normal {
            if !layer.deps.contains(&dep.as_str()) {
                findings.push(Finding {
                    file: manifest_rel.clone(),
                    line: 1,
                    check: "layering",
                    excerpt: format!(
                        "`{}` must not depend on `{dep}` (back-edge in the layering DAG)",
                        layer.name
                    ),
                });
            }
        }
        // Source references must be declared (normal or dev — dev covers
        // `#[cfg(test)]` modules compiled into the lib target).
        let src_dir = root.join(layer.dir).join("src");
        let declared: BTreeSet<&str> = deps
            .normal
            .iter()
            .chain(deps.dev.iter())
            .map(String::as_str)
            .collect();
        for file in collect_rs_files(&src_dir)? {
            let text = fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
            for reference in source_crate_refs(&text) {
                // Only idents naming actual workspace crates count — local
                // `lunule_*` identifiers (functions, variables) do not.
                if !LAYERING.iter().any(|l| l.name == reference) {
                    continue;
                }
                if reference != layer.name && !declared.contains(reference.as_str()) {
                    findings.push(Finding {
                        file: rel_path(root, &file),
                        line: 1,
                        check: "layering",
                        excerpt: format!(
                            "references `{reference}` without declaring it in {manifest_rel}"
                        ),
                    });
                }
            }
        }
    }
    Ok(findings)
}

/// Topological layer index of every crate in [`LAYERING`] (0 = lowest), or
/// `None` if the table has a cycle. Used for the self-check and the
/// human-readable report.
pub fn topo_layers() -> Option<Vec<(&'static str, usize)>> {
    let mut layers: Vec<Option<usize>> = vec![None; LAYERING.len()];
    let mut progressed = true;
    while progressed {
        progressed = false;
        for (i, l) in LAYERING.iter().enumerate() {
            if layers[i].is_some() {
                continue;
            }
            let dep_layers: Option<Vec<usize>> = l
                .deps
                .iter()
                .map(|d| {
                    LAYERING
                        .iter()
                        .position(|x| x.name == *d)
                        .and_then(|j| layers[j])
                })
                .collect();
            if let Some(ds) = dep_layers {
                layers[i] = Some(ds.iter().max().map_or(0, |m| m + 1));
                progressed = true;
            }
        }
    }
    layers
        .iter()
        .enumerate()
        .map(|(i, l)| l.map(|v| (LAYERING[i].name, v)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // -- determinism ---------------------------------------------------------

    #[test]
    fn hash_collections_are_flagged_in_code_only() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        let findings = determinism_scan("lib.rs", src);
        assert_eq!(findings.len(), 3);
        assert!(findings.iter().all(|f| f.check == "det-collection"));
        // The same text inside comments and strings is invisible.
        let clean = "// HashMap is banned\nfn f() { let s = \"HashSet\"; let _ = s; }\n";
        assert!(determinism_scan("lib.rs", clean).is_empty());
    }

    #[test]
    fn wall_clocks_env_and_randomstate_are_flagged() {
        let src = "fn f() {\n    let t = std::time::Instant::now();\n    let s = std::time::SystemTime::now();\n    let v = std::env::var(\"X\");\n    let h: std::collections::hash_map::RandomState = Default::default();\n}\n";
        let checks: Vec<&str> = determinism_scan("lib.rs", src)
            .iter()
            .map(|f| f.check)
            .collect();
        assert_eq!(
            checks,
            vec!["det-clock", "det-clock", "det-env", "det-random"]
        );
    }

    #[test]
    fn env_ident_alone_is_not_flagged() {
        let src = "fn f(env: u32) -> u32 { env + 1 }\n";
        assert!(determinism_scan("lib.rs", src).is_empty());
    }

    #[test]
    fn tests_may_use_hash_collections() {
        let src = "fn f() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    #[test]\n    fn t() { let _ = HashMap::<u32, u32>::new(); }\n}\n";
        assert!(determinism_scan("lib.rs", src).is_empty());
    }

    // -- cast safety ---------------------------------------------------------

    #[test]
    fn widening_matrix() {
        assert!(widens(Num::U(32), Num::U(64)));
        assert!(widens(Num::U(32), Num::I(64)));
        assert!(widens(Num::U(32), Num::F(53)));
        assert!(widens(Num::I(32), Num::F(53)));
        assert!(widens(Num::F(24), Num::F(53)));
        assert!(!widens(Num::U(64), Num::U(32)), "narrowing");
        assert!(
            !widens(Num::U(64), Num::F(53)),
            "u64 -> f64 loses precision"
        );
        assert!(!widens(Num::I(32), Num::U(64)), "sign-changing");
        assert!(
            !widens(Num::U(32), Num::F(24)),
            "u32 -> f32 loses precision"
        );
        assert!(!widens(Num::F(53), Num::I(64)), "float -> int truncates");
    }

    #[test]
    fn suffixed_and_fitting_literals_pass() {
        let clean = "fn f() -> u64 { 7u32 as u64 }\nfn g() -> u8 { 255 as u8 }\nfn h() -> f64 { 1 as f64 }\nfn k() -> u64 { 0xFF as u64 }\n";
        assert!(
            cast_scan("lib.rs", clean).is_empty(),
            "{:?}",
            cast_scan("lib.rs", clean)
        );
    }

    #[test]
    fn non_fitting_literal_is_flagged() {
        let src = "fn f() -> u8 { 256 as u8 }\n";
        let findings = cast_scan("lib.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].check, "cast-lossy");
    }

    #[test]
    fn unknown_source_requires_waiver() {
        let flagged = "fn f(x: u64) -> u32 { x as u32 }\n";
        assert_eq!(cast_scan("lib.rs", flagged).len(), 1);
        let waived = "fn f(x: u64) -> u32 { x as u32 } // as-ok: x is a rank index < 2^16\n";
        assert!(cast_scan("lib.rs", waived).is_empty());
        let waived_above =
            "fn f(x: u64) -> u32 {\n    // as-ok: x is a rank index < 2^16\n    x as u32\n}\n";
        assert!(cast_scan("lib.rs", waived_above).is_empty());
    }

    #[test]
    fn cast_chains_prove_widening() {
        let clean = "fn f(x: MyId) -> u64 { x.raw() as u32 as u64 } // as-ok: raw is u32\n";
        assert!(cast_scan("lib.rs", clean).is_empty());
        // Chain that narrows is still flagged.
        let dirty = "fn f(x: u8) -> u32 { x as u64 as u32 } // first cast unproven too\n";
        assert_eq!(cast_scan("lib.rs", dirty).len(), 2);
    }

    #[test]
    fn non_numeric_as_is_ignored() {
        let src = "use std::fmt as f;\nfn g(x: &dyn std::any::Any) { let _ = x as &dyn std::any::Any; }\n";
        assert!(cast_scan("lib.rs", src).is_empty());
    }

    #[test]
    fn casts_in_tests_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let x = 3.7_f64 as u32; let _ = x; }\n}\n";
        assert!(cast_scan("lib.rs", src).is_empty());
    }

    #[test]
    fn stale_as_ok_comment_is_flagged() {
        let src = "// as-ok: nothing here anymore\nfn f() {}\n";
        let findings = cast_scan("lib.rs", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].check, "stale-cast-waiver");
    }

    #[test]
    fn waiver_on_test_cast_is_not_stale() {
        // The cast is exempt (test code) but the waiver still covers a
        // cast line, so it is not reported stale.
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { let _ = 3.7 as u32; } // as-ok: test\n}\n";
        assert!(cast_scan("lib.rs", src).is_empty());
    }

    // -- layering ------------------------------------------------------------

    #[test]
    fn manifest_dep_parsing() {
        let toml = "[package]\nname = \"lunule-sim\"\n\n[dependencies]\nlunule-core = { workspace = true }\nlunule-verify = { workspace = true, optional = true }\nserde = \"1\"\n\n[dev-dependencies]\nlunule-workloads = { workspace = true }\n";
        let deps = parse_manifest_deps(toml);
        assert_eq!(deps.normal, vec!["lunule-core", "lunule-verify"]);
        assert_eq!(deps.dev, vec!["lunule-workloads"]);
    }

    #[test]
    fn source_refs_ignore_comments_and_strings() {
        let src = "//! uses lunule_core in docs\nuse lunule_namespace::InodeId;\nfn f() { let s = \"lunule_sim\"; let _ = (s, lunule_util::Json::Null); }\n";
        let refs = source_crate_refs(src);
        assert_eq!(
            refs.into_iter().collect::<Vec<_>>(),
            vec!["lunule-namespace", "lunule-util"]
        );
    }

    #[test]
    fn layering_table_is_acyclic_and_layered() {
        let layers = topo_layers().expect("table must be acyclic");
        let layer_of = |name: &str| layers.iter().find(|(n, _)| *n == name).map(|(_, l)| *l);
        assert_eq!(layer_of("lunule-util"), Some(0));
        assert!(layer_of("lunule-core") < layer_of("lunule-sim"));
        assert!(layer_of("lunule-sim") < layer_of("lunule-workloads"));
        assert!(layer_of("lunule-workloads") < layer_of("lunule-bench"));
    }

    #[test]
    fn real_workspace_layering_is_clean() {
        let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .map(Path::to_path_buf)
            .unwrap();
        let findings = layering_check(&root).unwrap();
        assert!(
            findings.is_empty(),
            "layering must stay clean:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
