//! The CI bench-regression gate: compares a fresh `BENCH.json` (from
//! `cargo run --release -p lunule-bench --bin perf`) against a checked-in
//! baseline and fails when any entry's `ns_per_op` regressed beyond its
//! threshold.
//!
//! The default threshold is 15%: the shared-runner noise floor for this
//! basket sits well under that once the build is cached, and a tighter
//! default is what makes the perf wins of the hot-path work durable.
//! Benchmarks that are legitimately noisier (end-to-end cells like
//! `sim_tick_loop`) carry their own bound via an optional
//! `max_regress_pct` field on their baseline entry, so one noisy cell no
//! longer inflates the global gate.
//!
//! Set mismatches between the two files are reported as an explicit delta
//! listing (benches only in the baseline, benches only in the current
//! run) rather than a generic failure: a missing bench still fails the
//! gate — a silently dropped benchmark must not shrink it — while extra
//! benches pass and start gating once the baseline is refreshed.

use std::fs;
use std::process::ExitCode;

use lunule_util::Json;

/// One entry parsed from a `BENCH.json` array: the benchmark name and its
/// wall-time cost per operation. The other emitted fields (`iters`,
/// `ops_per_sec`) are derived or informational and do not gate CI.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Benchmark name (`authority_resolve`, …).
    pub bench: String,
    /// Measured nanoseconds per operation.
    pub ns_per_op: f64,
    /// Optional per-bench regression bound in percent (baseline side
    /// only): `40.0` allows up to +40% before failing, overriding the
    /// gate's default threshold for this one benchmark.
    pub max_regress_pct: Option<f64>,
}

/// Outcome of comparing one baseline benchmark against the current run.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within threshold; carries `current / baseline` for the report.
    Ok(f64),
    /// `current / baseline` exceeded the allowed ratio; carries the ratio
    /// and the threshold (as a fraction) that applied to this bench.
    Regressed(f64, f64),
    /// In the baseline but absent from the current run — a silently
    /// dropped benchmark must fail the gate, not shrink it.
    Missing,
}

/// Compares `current` against `baseline`: one verdict per baseline entry,
/// in baseline order. A baseline entry with `max_regress_pct` is judged
/// against its own bound instead of `default_threshold`. Entries that
/// exist only in `current` are newly added benchmarks and always pass
/// (they gate once the baseline is refreshed).
pub fn compare_benches(
    baseline: &[BenchEntry],
    current: &[BenchEntry],
    default_threshold: f64,
) -> Vec<(String, Verdict)> {
    baseline
        .iter()
        .map(|b| {
            let threshold = b
                .max_regress_pct
                .map(|pct| pct / 100.0)
                .unwrap_or(default_threshold);
            let verdict = match current.iter().find(|c| c.bench == b.bench) {
                None => Verdict::Missing,
                Some(c) => {
                    let ratio = if b.ns_per_op > 0.0 {
                        c.ns_per_op / b.ns_per_op
                    } else {
                        f64::INFINITY
                    };
                    if ratio > 1.0 + threshold {
                        Verdict::Regressed(ratio, threshold)
                    } else {
                        Verdict::Ok(ratio)
                    }
                }
            };
            (b.bench.clone(), verdict)
        })
        .collect()
}

/// The set difference between baseline and current bench names:
/// `(only_in_baseline, only_in_current)`, each in file order. Used for the
/// explicit delta listing when the two files disagree on the bench set.
pub fn bench_set_delta(
    baseline: &[BenchEntry],
    current: &[BenchEntry],
) -> (Vec<String>, Vec<String>) {
    let only_in_baseline = baseline
        .iter()
        .filter(|b| !current.iter().any(|c| c.bench == b.bench))
        .map(|b| b.bench.clone())
        .collect();
    let only_in_current = current
        .iter()
        .filter(|c| !baseline.iter().any(|b| b.bench == c.bench))
        .map(|c| c.bench.clone())
        .collect();
    (only_in_baseline, only_in_current)
}

/// Parses a `BENCH.json` document: a top-level array of objects with at
/// least a string `bench` and a numeric `ns_per_op` field, plus an
/// optional numeric `max_regress_pct` (baseline files only; ignored but
/// accepted on the current side).
pub fn parse_bench_entries(text: &str) -> Result<Vec<BenchEntry>, String> {
    let json = Json::parse(text).map_err(|e| e.to_string())?;
    let arr = json
        .as_arr()
        .ok_or_else(|| "top-level value must be an array".to_string())?;
    let mut out = Vec::new();
    for (i, item) in arr.iter().enumerate() {
        let bench = item
            .get("bench")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("entry {i}: missing string field `bench`"))?
            .to_string();
        let ns_per_op = item
            .get("ns_per_op")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("entry {i} ({bench}): missing numeric field `ns_per_op`"))?;
        let max_regress_pct = match item.get("max_regress_pct") {
            None => None,
            Some(v) => {
                let pct = v.as_f64().ok_or_else(|| {
                    format!("entry {i} ({bench}): `max_regress_pct` must be a number")
                })?;
                if pct <= 0.0 {
                    return Err(format!(
                        "entry {i} ({bench}): `max_regress_pct` must be positive, got {pct}"
                    ));
                }
                Some(pct)
            }
        };
        out.push(BenchEntry {
            bench,
            ns_per_op,
            max_regress_pct,
        });
    }
    Ok(out)
}

/// Implements `bench-diff <baseline.json> <current.json> [--threshold F]`.
pub fn bench_diff_command(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold = 0.15_f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threshold" {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t > 0.0 => threshold = t,
                _ => {
                    eprintln!("bench-diff: --threshold needs a positive number");
                    return ExitCode::from(2);
                }
            }
        } else {
            paths.push(a);
        }
    }
    let (baseline_path, current_path) = match paths.as_slice() {
        [b, c] => (b.as_str(), c.as_str()),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- bench-diff <baseline.json> <current.json> [--threshold 0.15]"
            );
            return ExitCode::from(2);
        }
    };
    let load = |path: &str| -> Result<Vec<BenchEntry>, String> {
        let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        parse_bench_entries(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-diff: {e}");
            return ExitCode::from(2);
        }
    };

    let verdicts = compare_benches(&baseline, &current, threshold);
    println!(
        "{:<20} {:>12} {:>12} {:>7}  verdict (default threshold +{:.0}%)",
        "bench",
        "base ns/op",
        "cur ns/op",
        "ratio",
        threshold * 100.0
    );
    let ns_of = |entries: &[BenchEntry], name: &str| {
        entries
            .iter()
            .find(|e| e.bench == name)
            .map(|e| e.ns_per_op)
    };
    let mut regressions = 0usize;
    for (name, verdict) in &verdicts {
        let base = ns_of(&baseline, name).unwrap_or(f64::NAN);
        match verdict {
            Verdict::Ok(ratio) => {
                let cur = ns_of(&current, name).unwrap_or(f64::NAN);
                println!("{name:<20} {base:>12.1} {cur:>12.1} {ratio:>6.2}x  ok");
            }
            Verdict::Regressed(ratio, bound) => {
                let cur = ns_of(&current, name).unwrap_or(f64::NAN);
                println!(
                    "{name:<20} {base:>12.1} {cur:>12.1} {ratio:>6.2}x  REGRESSED (bound +{:.0}%)",
                    bound * 100.0
                );
                regressions += 1;
            }
            Verdict::Missing => {
                regressions += 1;
            }
        }
    }
    for c in &current {
        if !baseline.iter().any(|b| b.bench == c.bench) {
            println!(
                "{:<20} {:>12} {:>12.1} {:>7}  new (no baseline, passes)",
                c.bench, "-", c.ns_per_op, "-"
            );
        }
    }
    let (only_base, only_cur) = bench_set_delta(&baseline, &current);
    if !only_base.is_empty() || !only_cur.is_empty() {
        println!("bench-diff: bench sets differ between the two files:");
        if !only_base.is_empty() {
            println!(
                "  only in baseline (FAIL — dropped from the current run): {}",
                only_base.join(", ")
            );
        }
        if !only_cur.is_empty() {
            println!(
                "  only in current (pass — gate after a baseline refresh): {}",
                only_cur.join(", ")
            );
        }
    }
    if regressions > 0 {
        println!("bench-diff: {regressions} regression(s)");
        ExitCode::from(1)
    } else {
        println!("bench-diff: clean ({} benchmark(s))", verdicts.len());
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, ns: f64) -> BenchEntry {
        BenchEntry {
            bench: name.to_string(),
            ns_per_op: ns,
            max_regress_pct: None,
        }
    }

    #[test]
    fn bench_json_round_trip_parses() {
        let text = "[\n  {\"bench\": \"a\", \"iters\": 10, \"ns_per_op\": 100.0, \"ops_per_sec\": 1.0e7},\n  {\"bench\": \"b\", \"iters\": 5, \"ns_per_op\": 42.5, \"ops_per_sec\": 2.35e7}\n]\n";
        let entries = parse_bench_entries(text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].bench, "a");
        assert!((entries[1].ns_per_op - 42.5).abs() < 1e-9);
        assert_eq!(entries[0].max_regress_pct, None);
        assert!(parse_bench_entries("{\"not\": \"an array\"}").is_err());
        assert!(parse_bench_entries("[{\"iters\": 3}]").is_err());
    }

    #[test]
    fn max_regress_pct_parses_and_validates() {
        let text = "[{\"bench\": \"noisy\", \"ns_per_op\": 100.0, \"max_regress_pct\": 40}]";
        let entries = parse_bench_entries(text).unwrap();
        assert_eq!(entries[0].max_regress_pct, Some(40.0));
        let bad = "[{\"bench\": \"x\", \"ns_per_op\": 1.0, \"max_regress_pct\": -5}]";
        assert!(parse_bench_entries(bad).is_err());
        let not_num = "[{\"bench\": \"x\", \"ns_per_op\": 1.0, \"max_regress_pct\": \"40\"}]";
        assert!(parse_bench_entries(not_num).is_err());
    }

    #[test]
    fn bench_compare_verdicts() {
        let baseline = vec![
            entry("tick", 100.0),
            entry("frag", 10.0),
            entry("gone", 5.0),
        ];
        let current = vec![
            entry("tick", 114.0),    // +14% — inside the 15% default
            entry("frag", 11.6),     // +16% — regression
            entry("brand_new", 1.0), // no baseline — passes
        ];
        let verdicts = compare_benches(&baseline, &current, 0.15);
        assert_eq!(verdicts.len(), 3);
        assert!(matches!(verdicts[0].1, Verdict::Ok(_)));
        assert!(matches!(verdicts[1].1, Verdict::Regressed(_, _)));
        assert_eq!(verdicts[2].1, Verdict::Missing);
        // Exactly at the threshold passes; strictly beyond fails.
        let at = compare_benches(&[entry("x", 100.0)], &[entry("x", 115.0)], 0.15);
        assert!(matches!(at[0].1, Verdict::Ok(_)));
        let over = compare_benches(&[entry("x", 100.0)], &[entry("x", 115.1)], 0.15);
        assert!(matches!(over[0].1, Verdict::Regressed(_, _)));
    }

    #[test]
    fn per_bench_override_loosens_only_its_own_bound() {
        let noisy = BenchEntry {
            bench: "noisy".to_string(),
            ns_per_op: 100.0,
            max_regress_pct: Some(40.0),
        };
        let baseline = vec![noisy, entry("stable", 100.0)];
        // +30% on both: the overridden bench passes, the default-gated
        // bench fails.
        let current = vec![entry("noisy", 130.0), entry("stable", 130.0)];
        let verdicts = compare_benches(&baseline, &current, 0.15);
        assert!(matches!(verdicts[0].1, Verdict::Ok(_)));
        match verdicts[1].1 {
            Verdict::Regressed(ratio, bound) => {
                assert!((ratio - 1.30).abs() < 1e-9);
                assert!((bound - 0.15).abs() < 1e-9);
            }
            ref v => panic!("expected regression, got {v:?}"),
        }
        // Beyond even the override fails with the override bound reported.
        let current = vec![entry("noisy", 141.0), entry("stable", 100.0)];
        let verdicts = compare_benches(&baseline, &current, 0.15);
        match verdicts[0].1 {
            Verdict::Regressed(_, bound) => assert!((bound - 0.40).abs() < 1e-9),
            ref v => panic!("expected regression, got {v:?}"),
        }
    }

    #[test]
    fn set_delta_lists_both_directions() {
        let baseline = vec![entry("a", 1.0), entry("b", 2.0)];
        let current = vec![entry("b", 2.0), entry("c", 3.0)];
        let (only_base, only_cur) = bench_set_delta(&baseline, &current);
        assert_eq!(only_base, vec!["a".to_string()]);
        assert_eq!(only_cur, vec!["c".to_string()]);
        let (e1, e2) = bench_set_delta(&baseline, &baseline);
        assert!(e1.is_empty() && e2.is_empty());
    }
}
