//! The CI bench-regression gate: compares a fresh `BENCH.json` (from
//! `cargo run --release -p lunule-bench --bin perf`) against a checked-in
//! baseline and fails when any entry's `ns_per_op` regressed beyond the
//! threshold (default 40% — microbenchmarks on shared CI runners are
//! noisy; the job guards against step-change regressions, not
//! percent-level drift).

use std::fs;
use std::process::ExitCode;

use lunule_util::Json;

/// One entry parsed from a `BENCH.json` array: the benchmark name and its
/// wall-time cost per operation. The other emitted fields (`iters`,
/// `ops_per_sec`) are derived or informational and do not gate CI.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Benchmark name (`authority_resolve`, …).
    pub bench: String,
    /// Measured nanoseconds per operation.
    pub ns_per_op: f64,
}

/// Outcome of comparing one baseline benchmark against the current run.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within threshold; carries `current / baseline` for the report.
    Ok(f64),
    /// `current / baseline` exceeded `1 + threshold`.
    Regressed(f64),
    /// In the baseline but absent from the current run — a silently
    /// dropped benchmark must fail the gate, not shrink it.
    Missing,
}

/// Compares `current` against `baseline`: one verdict per baseline entry,
/// in baseline order. Entries that exist only in `current` are newly added
/// benchmarks and always pass (they gate once the baseline is refreshed).
pub fn compare_benches(
    baseline: &[BenchEntry],
    current: &[BenchEntry],
    threshold: f64,
) -> Vec<(String, Verdict)> {
    baseline
        .iter()
        .map(|b| {
            let verdict = match current.iter().find(|c| c.bench == b.bench) {
                None => Verdict::Missing,
                Some(c) => {
                    let ratio = if b.ns_per_op > 0.0 {
                        c.ns_per_op / b.ns_per_op
                    } else {
                        f64::INFINITY
                    };
                    if ratio > 1.0 + threshold {
                        Verdict::Regressed(ratio)
                    } else {
                        Verdict::Ok(ratio)
                    }
                }
            };
            (b.bench.clone(), verdict)
        })
        .collect()
}

/// Parses a `BENCH.json` document: a top-level array of objects with at
/// least a string `bench` and a numeric `ns_per_op` field.
pub fn parse_bench_entries(text: &str) -> Result<Vec<BenchEntry>, String> {
    let json = Json::parse(text).map_err(|e| e.to_string())?;
    let arr = json
        .as_arr()
        .ok_or_else(|| "top-level value must be an array".to_string())?;
    let mut out = Vec::new();
    for (i, item) in arr.iter().enumerate() {
        let bench = item
            .get("bench")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("entry {i}: missing string field `bench`"))?
            .to_string();
        let ns_per_op = item
            .get("ns_per_op")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("entry {i} ({bench}): missing numeric field `ns_per_op`"))?;
        out.push(BenchEntry { bench, ns_per_op });
    }
    Ok(out)
}

/// Implements `bench-diff <baseline.json> <current.json> [--threshold F]`.
pub fn bench_diff_command(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold = 0.40_f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threshold" {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t > 0.0 => threshold = t,
                _ => {
                    eprintln!("bench-diff: --threshold needs a positive number");
                    return ExitCode::from(2);
                }
            }
        } else {
            paths.push(a);
        }
    }
    let (baseline_path, current_path) = match paths.as_slice() {
        [b, c] => (b.as_str(), c.as_str()),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- bench-diff <baseline.json> <current.json> [--threshold 0.40]"
            );
            return ExitCode::from(2);
        }
    };
    let load = |path: &str| -> Result<Vec<BenchEntry>, String> {
        let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        parse_bench_entries(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-diff: {e}");
            return ExitCode::from(2);
        }
    };

    let verdicts = compare_benches(&baseline, &current, threshold);
    println!(
        "{:<20} {:>12} {:>12} {:>7}  verdict (threshold +{:.0}%)",
        "bench",
        "base ns/op",
        "cur ns/op",
        "ratio",
        threshold * 100.0
    );
    let ns_of = |entries: &[BenchEntry], name: &str| {
        entries
            .iter()
            .find(|e| e.bench == name)
            .map(|e| e.ns_per_op)
    };
    let mut regressions = 0usize;
    for (name, verdict) in &verdicts {
        let base = ns_of(&baseline, name).unwrap_or(f64::NAN);
        match verdict {
            Verdict::Ok(ratio) => {
                let cur = ns_of(&current, name).unwrap_or(f64::NAN);
                println!("{name:<20} {base:>12.1} {cur:>12.1} {ratio:>6.2}x  ok");
            }
            Verdict::Regressed(ratio) => {
                let cur = ns_of(&current, name).unwrap_or(f64::NAN);
                println!("{name:<20} {base:>12.1} {cur:>12.1} {ratio:>6.2}x  REGRESSED");
                regressions += 1;
            }
            Verdict::Missing => {
                println!(
                    "{name:<20} {base:>12.1} {:>12} {:>7}  MISSING from current run",
                    "-", "-"
                );
                regressions += 1;
            }
        }
    }
    for c in &current {
        if !baseline.iter().any(|b| b.bench == c.bench) {
            println!(
                "{:<20} {:>12} {:>12.1} {:>7}  new (no baseline, passes)",
                c.bench, "-", c.ns_per_op, "-"
            );
        }
    }
    if regressions > 0 {
        println!("bench-diff: {regressions} regression(s)");
        ExitCode::from(1)
    } else {
        println!("bench-diff: clean ({} benchmark(s))", verdicts.len());
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_round_trip_parses() {
        let text = "[\n  {\"bench\": \"a\", \"iters\": 10, \"ns_per_op\": 100.0, \"ops_per_sec\": 1.0e7},\n  {\"bench\": \"b\", \"iters\": 5, \"ns_per_op\": 42.5, \"ops_per_sec\": 2.35e7}\n]\n";
        let entries = parse_bench_entries(text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].bench, "a");
        assert!((entries[1].ns_per_op - 42.5).abs() < 1e-9);
        assert!(parse_bench_entries("{\"not\": \"an array\"}").is_err());
        assert!(parse_bench_entries("[{\"iters\": 3}]").is_err());
    }

    #[test]
    fn bench_compare_verdicts() {
        let entry = |name: &str, ns: f64| BenchEntry {
            bench: name.to_string(),
            ns_per_op: ns,
        };
        let baseline = vec![
            entry("tick", 100.0),
            entry("frag", 10.0),
            entry("gone", 5.0),
        ];
        let current = vec![
            entry("tick", 139.0),    // +39% — inside the 40% threshold
            entry("frag", 14.1),     // +41% — regression
            entry("brand_new", 1.0), // no baseline — passes
        ];
        let verdicts = compare_benches(&baseline, &current, 0.40);
        assert_eq!(verdicts.len(), 3);
        assert!(matches!(verdicts[0].1, Verdict::Ok(_)));
        assert!(matches!(verdicts[1].1, Verdict::Regressed(_)));
        assert_eq!(verdicts[2].1, Verdict::Missing);
        // Exactly at the threshold passes; strictly beyond fails.
        let at = compare_benches(&[entry("x", 100.0)], &[entry("x", 140.0)], 0.40);
        assert!(matches!(at[0].1, Verdict::Ok(_)));
        let over = compare_benches(&[entry("x", 100.0)], &[entry("x", 140.1)], 0.40);
        assert!(matches!(over[0].1, Verdict::Regressed(_)));
    }
}
