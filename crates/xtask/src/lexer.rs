//! A minimal, std-only Rust lexer for the static-analysis passes.
//!
//! The goal is not full fidelity with rustc's lexer grammar but *token
//! classification that can never confuse code with text*: line and nested
//! block comments, normal/byte/raw string literals, char literals vs
//! lifetimes, identifiers (including raw `r#ident`s), numeric literals
//! (with suffix, exponent and tuple-index handling), and punctuation
//! (multi-character operators emitted as single tokens so passes can match
//! `==`, `::` or `..=` directly).
//!
//! Every token records the 1-based line it *starts* on, so findings point
//! at real source locations, and comment/string tokens are kept in the
//! stream (rather than discarded) so passes can both ignore them for code
//! rules and inspect them for waiver comments.

/// Classification of one lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (includes raw identifiers like `r#type`).
    Ident,
    /// Lifetime such as `'a` or `'static` (not a char literal).
    Lifetime,
    /// Integer literal (`42`, `0xFF_u8`, `1_000`).
    Int,
    /// Floating-point literal (`1.0`, `1e-9`, `0.5_f64`).
    Float,
    /// Normal or byte string literal (`"…"`, `b"…"`, `c"…"`).
    Str,
    /// Raw string literal (`r"…"`, `r#"…"#`, `br##"…"##`).
    RawStr,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// Line comment, including doc comments (`//`, `///`, `//!`).
    LineComment,
    /// Block comment, possibly nested (`/* /* … */ */`).
    BlockComment,
    /// Punctuation; multi-character operators are one token (`==`, `..=`).
    Punct,
}

/// One token: its kind, the exact source text, and the 1-based line the
/// token starts on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tok<'a> {
    /// Token classification.
    pub kind: TokKind,
    /// Source text of the token (for multi-line tokens, all of it).
    pub text: &'a str,
    /// 1-based line number of the token's first character.
    pub line: usize,
}

impl Tok<'_> {
    /// True for tokens that are not code (comments).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Multi-character punctuation, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Lexes `src` into a token stream. Whitespace is dropped; comments are
/// kept as tokens. The lexer is total: any byte sequence produces a token
/// stream (unterminated literals run to end of input).
pub fn lex(src: &str) -> Vec<Tok<'_>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        toks: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    toks: Vec<Tok<'a>>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok<'a>> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            let next = self.peek(1);
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if next == Some(b'/') => self.line_comment(),
                b'/' if next == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'\'' => self.char_or_lifetime(),
                _ if is_ident_start(b) => self.ident_or_prefixed_literal(),
                _ if b.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        self.toks
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, line: usize) {
        self.toks.push(Tok {
            kind,
            text: &self.src[start..self.pos],
            line,
        });
    }

    fn line_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(TokKind::LineComment, start, line);
    }

    fn block_comment(&mut self) {
        let (start, line) = (self.pos, self.line);
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            match (self.bytes[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokKind::BlockComment, start, line);
    }

    /// Consumes a normal/byte string starting at its opening quote; `start`
    /// is where the token began (possibly at a `b`/`c` prefix).
    fn string(&mut self, start: usize) {
        let line = self.line;
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        self.push(TokKind::Str, start, line);
    }

    /// Consumes a raw string; `self.pos` is at the `r`, `hash_pos` at the
    /// first `#` or the quote. `start` covers an optional `b` prefix.
    fn raw_string(&mut self, start: usize) {
        let line = self.line;
        self.pos += 1; // the `r`
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' && self.closes_raw(hashes) {
                self.pos += 1 + hashes;
                break;
            }
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
            }
            self.pos += 1;
        }
        self.push(TokKind::RawStr, start, line);
    }

    fn closes_raw(&self, hashes: usize) -> bool {
        (0..hashes).all(|k| self.bytes.get(self.pos + 1 + k) == Some(&b'#'))
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal). A lifetime is a
    /// quote followed by an identifier run that is *not* closed by another
    /// quote; everything else starting with `'` is a char literal.
    fn char_or_lifetime(&mut self) {
        let (start, line) = (self.pos, self.line);
        let first = self.peek(1);
        if first.is_some_and(is_ident_start) {
            // Find the end of the ident run; a closing quote right after a
            // *single-char* run means a char literal like 'a'.
            let mut j = self.pos + 1;
            while self.bytes.get(j).copied().is_some_and(is_ident_continue) {
                j += 1;
            }
            if self.bytes.get(j) != Some(&b'\'') {
                self.pos = j;
                self.push(TokKind::Lifetime, start, line);
                return;
            }
        }
        // Char literal: consume to the closing quote, honouring escapes.
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => self.pos += 2,
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => break, // unterminated; don't swallow the file
                _ => self.pos += 1,
            }
        }
        self.push(TokKind::Char, start, line);
    }

    /// An identifier, or a literal introduced by a prefix letter: `r"…"`,
    /// `r#"…"#` (raw strings), `r#ident` (raw identifier), `b"…"`, `b'…'`,
    /// `br#"…"#`, `c"…"`.
    fn ident_or_prefixed_literal(&mut self) {
        let (start, line) = (self.pos, self.line);
        let b = self.bytes[self.pos];
        let next = self.peek(1);
        // Raw string: r" or r#…" (but r#ident is a raw identifier).
        if b == b'r' || b == b'b' || b == b'c' {
            let (r_off, is_br) = if b == b'b' && next == Some(b'r') {
                (1, true)
            } else {
                (0, false)
            };
            if is_br || b == b'r' {
                if self.raw_quote_after(self.pos + r_off + 1) {
                    if is_br {
                        self.pos += 1; // skip the `b`; raw_string eats the `r`
                    }
                    self.raw_string(start);
                    return;
                }
                // r#ident — raw identifier: skip `r#`, lex the ident run.
                if b == b'r' && next == Some(b'#') && self.peek(2).is_some_and(is_ident_start) {
                    self.pos += 2;
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.pos += 1;
                    }
                    self.push(TokKind::Ident, start, line);
                    return;
                }
            }
            if (b == b'b' || b == b'c') && next == Some(b'"') {
                self.pos += 1; // prefix; string() eats the quote
                self.string(start);
                return;
            }
            if b == b'b' && next == Some(b'\'') {
                // Byte literal b'…': treat like a char literal.
                self.pos += 1;
                self.char_or_lifetime();
                // Fix up: char_or_lifetime pushed with its own start; widen
                // the token to include the prefix.
                if let Some(last) = self.toks.last_mut() {
                    last.text = &self.src[start..start + 1 + last.text.len()];
                }
                return;
            }
        }
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        self.push(TokKind::Ident, start, line);
    }

    /// True when position `p` starts `#*"` (the hash-run/quote of a raw
    /// string opener).
    fn raw_quote_after(&self, mut p: usize) -> bool {
        while self.bytes.get(p) == Some(&b'#') {
            p += 1;
        }
        self.bytes.get(p) == Some(&b'"')
    }

    fn number(&mut self) {
        let (start, line) = (self.pos, self.line);
        let mut float = false;
        let radix_prefix = self.bytes[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x') | Some(b'o') | Some(b'b'));
        if radix_prefix {
            self.pos += 2;
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.pos += 1;
            }
            self.push(TokKind::Int, start, line);
            return;
        }
        while self
            .peek(0)
            .is_some_and(|c| c.is_ascii_digit() || c == b'_')
        {
            self.pos += 1;
        }
        // Fractional part: a dot NOT followed by another dot (range) or an
        // identifier start (method call / tuple field access).
        if self.peek(0) == Some(b'.')
            && !matches!(self.peek(1), Some(b'.'))
            && !self.peek(1).is_some_and(is_ident_start)
        {
            float = true;
            self.pos += 1;
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_digit() || c == b'_')
            {
                self.pos += 1;
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some(b'e') | Some(b'E')) {
            let sign = matches!(self.peek(1), Some(b'+') | Some(b'-'));
            let digit_at = if sign { 2 } else { 1 };
            if self.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
                float = true;
                self.pos += digit_at + 1;
                while self
                    .peek(0)
                    .is_some_and(|c| c.is_ascii_digit() || c == b'_')
                {
                    self.pos += 1;
                }
            }
        }
        // Type suffix (u32, f64, usize, …).
        let suffix_start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        if self.src[suffix_start..self.pos].starts_with('f') {
            float = true;
        }
        self.push(
            if float { TokKind::Float } else { TokKind::Int },
            start,
            line,
        );
    }

    fn punct(&mut self) {
        let (start, line) = (self.pos, self.line);
        let rest = &self.src[self.pos..];
        for p in PUNCTS {
            if rest.starts_with(p) {
                self.pos += p.len();
                self.push(TokKind::Punct, start, line);
                return;
            }
        }
        self.pos += 1;
        self.push(TokKind::Punct, start, line);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// The numeric suffix of an integer/float literal token (`"u32"` for
/// `7u32`, `""` for `7`). Exponents are not suffixes.
pub fn literal_suffix(text: &str) -> &str {
    for s in [
        "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
        "f64", "f32",
    ] {
        if let Some(pre) = text.strip_suffix(s) {
            if pre.is_empty() {
                continue;
            }
            // In hex literals `f32`/`f64` are valid digit runs (`0x1f32` is
            // an integer) — only a separating `_` marks them as a suffix.
            let hex = text.starts_with("0x") || text.starts_with("0X");
            if hex && s.starts_with('f') && !pre.ends_with('_') {
                continue;
            }
            return s;
        }
    }
    ""
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(
            kinds("let x = a::b();"),
            vec![
                (TokKind::Ident, "let"),
                (TokKind::Ident, "x"),
                (TokKind::Punct, "="),
                (TokKind::Ident, "a"),
                (TokKind::Punct, "::"),
                (TokKind::Ident, "b"),
                (TokKind::Punct, "("),
                (TokKind::Punct, ")"),
                (TokKind::Punct, ";"),
            ]
        );
    }

    #[test]
    fn comments_are_tokens_with_lines() {
        let toks = lex("a // one\n/* two\nthree */ b");
        assert_eq!(
            toks[0],
            Tok {
                kind: TokKind::Ident,
                text: "a",
                line: 1
            }
        );
        assert_eq!(toks[1].kind, TokKind::LineComment);
        assert_eq!(toks[1].line, 1);
        assert_eq!(toks[2].kind, TokKind::BlockComment);
        assert_eq!(toks[2].line, 2);
        assert_eq!(
            toks[3],
            Tok {
                kind: TokKind::Ident,
                text: "b",
                line: 3
            }
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* a /* b */ c */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert_eq!(toks[0].text, "/* a /* b */ c */");
        assert_eq!(toks[1].text, "x");
    }

    #[test]
    fn strings_and_raw_strings() {
        let toks = lex(r####"let s = "a\"b"; let r = r#"raw "inner" text"#;"####);
        let strs: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Str | TokKind::RawStr))
            .collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].kind, TokKind::Str);
        assert_eq!(strs[1].kind, TokKind::RawStr);
        assert_eq!(strs[1].text, r###"r#"raw "inner" text"#"###);
    }

    #[test]
    fn multiline_raw_string_tracks_lines() {
        let toks = lex("r\"line\nbreak\" after");
        assert_eq!(toks[0].kind, TokKind::RawStr);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].text, "after");
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks =
            lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let s: &'static str = \"\"; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 3, "{lifetimes:?}");
        assert_eq!(lifetimes[2].text, "'static");
        assert_eq!(chars.len(), 2, "{chars:?}");
        assert_eq!(chars[0].text, "'x'");
        assert_eq!(chars[1].text, "'\\n'");
    }

    #[test]
    fn byte_literals() {
        let toks = lex(r##"let a = b'x'; let s = b"bytes"; let r = br#"raw"#;"##);
        assert_eq!(toks[3].kind, TokKind::Char);
        assert_eq!(toks[3].text, "b'x'");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "b\"bytes\""));
        assert!(toks.iter().any(|t| t.kind == TokKind::RawStr));
    }

    #[test]
    fn raw_identifiers() {
        let toks = lex("let r#type = 1;");
        assert_eq!(toks[1].kind, TokKind::Ident);
        assert_eq!(toks[1].text, "r#type");
    }

    #[test]
    fn numbers_ints_floats_ranges() {
        let toks = lex("1 1.5 1e-9 0.5_f64 0xFF_u8 7u32 0..10 1.max(2) x.0");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| matches!(t.kind, TokKind::Int | TokKind::Float))
            .map(|t| (t.kind, t.text))
            .collect();
        assert_eq!(
            nums,
            vec![
                (TokKind::Int, "1"),
                (TokKind::Float, "1.5"),
                (TokKind::Float, "1e-9"),
                (TokKind::Float, "0.5_f64"),
                (TokKind::Int, "0xFF_u8"),
                (TokKind::Int, "7u32"),
                (TokKind::Int, "0"),
                (TokKind::Int, "10"),
                (TokKind::Int, "1"),
                (TokKind::Int, "2"),
                (TokKind::Int, "0"),
            ]
        );
        // `0..10` produced a `..` punct, `1.max` kept the dot separate.
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Punct && t.text == ".."));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "max"));
    }

    #[test]
    fn literal_suffixes() {
        assert_eq!(literal_suffix("7u32"), "u32");
        assert_eq!(literal_suffix("0.5_f64"), "f64");
        assert_eq!(literal_suffix("1_000"), "");
        assert_eq!(literal_suffix("0xFF_u8"), "u8");
    }

    #[test]
    fn multichar_puncts_are_single_tokens() {
        let texts: Vec<&str> = lex("a == b != c ..= d => e -> f :: g")
            .into_iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(texts, vec!["==", "!=", "..=", "=>", "->", "::"]);
    }

    #[test]
    fn unterminated_literals_do_not_hang() {
        assert!(!lex("let s = \"unterminated").is_empty());
        assert!(!lex("let s = r#\"unterminated").is_empty());
        assert!(!lex("/* unterminated").is_empty());
    }
}
