//! Workspace automation library: the token-aware static-analysis suite.
//!
//! The `xtask` binary (see `main.rs`) fronts three commands:
//!
//! - **`lint`** — project-rule lint over the library crates (no
//!   unwrap/expect/panic, no unsafe, no float `==`, no `println!`, no ad-hoc
//!   threads, mandatory crate-root attributes), rebuilt on the
//!   [`lexer`] so comments, strings, doc examples and char literals can
//!   never produce false positives;
//! - **`analyze`** — the deeper analysis passes: a *determinism auditor*
//!   (no `HashMap`/`HashSet`, wall clocks, `std::env` or `RandomState` in
//!   library code), a *crate-layering checker* (the workspace dependency
//!   DAG, declared in [`analyze::LAYERING`], with source-level import
//!   verification), and a *cast-safety lint* (numeric `as` casts in
//!   hot-path crates need a widening proof or an inline `as-ok:` waiver);
//! - **`bench-diff`** — the CI bench-regression gate.
//!
//! Waivers for `lint` and the determinism pass live in
//! `crates/xtask/lint-allow.txt` as `<repo-relative-path> <check-id>`
//! lines; cast waivers are inline `// as-ok: <reason>` comments. Both kinds
//! are *stale-checked*: a waiver that no longer matches any finding fails
//! the run, so the allowlist can only shrink.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod bench_diff;
pub mod lexer;
pub mod lint;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Library crates covered by the lint and determinism passes (binaries and
/// the bench harness are exempt: aborting on a broken experiment config is
/// the right behavior there).
pub const LIB_CRATES: &[&str] = &[
    "namespace",
    "core",
    "sim",
    "util",
    "workloads",
    "verify",
    "telemetry",
    "faults",
    "daemon",
    "snapshot",
];

/// Hot-path crates covered by the cast-safety pass: the per-op and per-tick
/// code where a silently lossy cast can skew balancer decisions or corrupt
/// determinism at scale.
pub const HOT_PATH_CRATES: &[&str] = &["core", "namespace", "sim", "util"];

/// One finding: file, 1-based line, stable check id, and the offending
/// source line (or a synthetic description for file-level checks).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable check id (also the allowlist key).
    pub check: &'static str,
    /// The offending source line, or a description for file-level checks.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.check,
            self.excerpt.trim()
        )
    }
}

/// Locates the workspace root: the manifest dir's grandparent when invoked
/// via cargo (`crates/xtask` → repo root), else the current directory.
pub fn workspace_root() -> Option<PathBuf> {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        return Some(p.parent()?.parent()?.to_path_buf());
    }
    std::env::current_dir().ok()
}

/// Recursively collects `.rs` files under `dir`, sorted for stable reports.
pub fn collect_rs_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
        let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
            let path = entry.path();
            if path.is_dir() {
                walk(&path, out)?;
            } else if path.extension().is_some_and(|x| x == "rs") {
                out.push(path);
            }
        }
        Ok(())
    }
    let mut files = Vec::new();
    walk(dir, &mut files)?;
    files.sort();
    Ok(files)
}

/// Repo-relative, forward-slash path of `file` under `root`.
pub fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// An allowlist entry: repo-relative path plus the check id it exempts.
pub type AllowEntry = (String, String);

/// Parses the allowlist file: `<path> <check-id>` per line, `#` comments.
/// A missing file is an empty allowlist.
pub fn load_allowlist(path: &Path) -> Result<Vec<AllowEntry>, String> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    parse_allowlist(&text)
}

/// Parses allowlist text (split out for tests).
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some(path), Some(check), None) => {
                entries.push((path.to_string(), check.to_string()));
            }
            _ => {
                return Err(format!(
                    "allowlist line {}: expected `<path> <check-id>`, got `{raw}`",
                    i + 1
                ));
            }
        }
    }
    Ok(entries)
}

/// True when `(file, check)` is exempted by the allowlist.
pub fn allowed(allow: &[AllowEntry], file: &str, check: &str) -> bool {
    allow
        .iter()
        .any(|(p, c)| p == file && (c == check || c == "*"))
}

/// Splits `findings` into kept (unexempted) findings and, for every
/// allowlist entry covering checks in `known_checks`, verifies the entry
/// matched at least one raw finding — a *stale* waiver (one that silences
/// nothing) becomes a `stale-waiver` finding itself, so the allowlist can
/// only shrink over time. Entries for other commands' checks are ignored.
pub fn filter_with_stale_check(
    findings: Vec<Finding>,
    allow: &[AllowEntry],
    known_checks: &[&str],
) -> Vec<Finding> {
    let mut kept: Vec<Finding> = Vec::new();
    let mut matched = vec![false; allow.len()];
    for f in findings {
        let mut exempt = false;
        for (i, (p, c)) in allow.iter().enumerate() {
            if *p == f.file && (*c == f.check || c == "*") {
                matched[i] = true;
                exempt = true;
            }
        }
        if !exempt {
            kept.push(f);
        }
    }
    for (i, (p, c)) in allow.iter().enumerate() {
        let relevant = c == "*" || known_checks.contains(&c.as_str());
        if relevant && !matched[i] && c != "*" {
            kept.push(Finding {
                file: p.clone(),
                line: 0,
                check: "stale-waiver",
                excerpt: format!("allowlist entry `{p} {c}` matches no finding — remove it"),
            });
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_parses_and_filters() {
        let text = "# grandfathered\ncrates/a/src/x.rs expect\ncrates/b/src/y.rs *\n\n";
        let allow = parse_allowlist(text).unwrap();
        assert_eq!(allow.len(), 2);
        assert!(allowed(&allow, "crates/a/src/x.rs", "expect"));
        assert!(!allowed(&allow, "crates/a/src/x.rs", "unwrap"));
        assert!(allowed(&allow, "crates/b/src/y.rs", "panic"));
        assert!(parse_allowlist("one-field-only\n").is_err());
    }

    #[test]
    fn stale_waivers_are_reported() {
        let allow = vec![
            ("crates/a/src/x.rs".to_string(), "expect".to_string()),
            ("crates/b/src/y.rs".to_string(), "unwrap".to_string()),
        ];
        let findings = vec![Finding {
            file: "crates/a/src/x.rs".to_string(),
            line: 3,
            check: "expect",
            excerpt: "x.expect(\"y\")".to_string(),
        }];
        let kept = filter_with_stale_check(findings, &allow, &["expect", "unwrap"]);
        // The live entry silences its finding; the dead entry surfaces.
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].check, "stale-waiver");
        assert_eq!(kept[0].file, "crates/b/src/y.rs");
    }

    #[test]
    fn foreign_check_waivers_are_not_stale_for_this_command() {
        let allow = vec![("crates/a/src/x.rs".to_string(), "det-env".to_string())];
        let kept = filter_with_stale_check(Vec::new(), &allow, &["expect", "unwrap"]);
        assert!(kept.is_empty(), "det-env is another command's check");
    }
}
