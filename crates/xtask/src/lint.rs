//! The project-rule lint pass, rebuilt on the token lexer.
//!
//! Rules (unchanged from the original regex-based pass, minus its false
//! positives — a `panic!` inside a doc comment or string literal is now
//! structurally invisible):
//!
//! - no `.unwrap()`, `.expect(` or `panic!(` in library code;
//! - no `unsafe` anywhere;
//! - no `==` / `!=` against floating-point literals;
//! - no `println!` / `eprintln!` in library code;
//! - no `std::thread` primitives outside the sanctioned pool module
//!   (this rule also covers the bench harness and xtask itself);
//! - every library crate root must carry `#![forbid(unsafe_code)]` and
//!   `#![warn(missing_docs)]`.
//!
//! `#[cfg(test)]`-gated items are exempt, resolved by token-level brace
//! matching rather than line heuristics.

use crate::lexer::{lex, Tok, TokKind};
use crate::{
    allowed, collect_rs_files, filter_with_stale_check, rel_path, AllowEntry, Finding, LIB_CRATES,
};
use std::fs;
use std::path::Path;

/// Check ids owned by the lint command (used for stale-waiver detection).
pub const LINT_CHECKS: &[&str] = &[
    "unwrap",
    "expect",
    "panic",
    "unsafe",
    "float-eq",
    "println",
    "eprintln",
    "thread-spawn",
    "missing-docs-lint",
    "missing-forbid-unsafe",
];

/// Crates outside [`LIB_CRATES`] that still get the thread-spawn rule:
/// ad-hoc threading in the bench harness (or xtask itself) would break
/// deterministic result ordering just as surely as in library code.
const THREAD_RULE_CRATES: &[&str] = &["bench", "xtask"];

/// Lints every library crate under `root`; returns unexempted findings
/// plus stale-waiver findings for dead allowlist entries.
pub fn lint_workspace(root: &Path, allow: &[AllowEntry]) -> Result<Vec<Finding>, String> {
    for (path, check) in allow {
        let known = LINT_CHECKS.contains(&check.as_str())
            || crate::analyze::ANALYZE_CHECKS.contains(&check.as_str())
            || check == "*";
        if !known {
            return Err(format!(
                "allowlist: unknown check id `{check}` for `{path}`"
            ));
        }
    }
    let mut findings = Vec::new();
    for krate in LIB_CRATES {
        let src_dir = root.join("crates").join(krate).join("src");
        for file in collect_rs_files(&src_dir)? {
            let text = fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
            let rel = rel_path(root, &file);
            findings.extend(scan_source(&rel, &text));
            if file.file_name().is_some_and(|n| n == "lib.rs") {
                findings.extend(check_crate_root(&rel, &text));
            }
        }
    }
    for krate in THREAD_RULE_CRATES {
        let src_dir = root.join("crates").join(krate).join("src");
        for file in collect_rs_files(&src_dir)? {
            let text = fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
            let rel = rel_path(root, &file);
            findings.extend(
                scan_source(&rel, &text)
                    .into_iter()
                    .filter(|f| f.check == "thread-spawn"),
            );
        }
    }
    Ok(filter_with_stale_check(findings, allow, LINT_CHECKS))
}

/// Variant of [`lint_workspace`] without stale-waiver detection, used by
/// tests that lint synthetic trees.
pub fn scan_source(file: &str, text: &str) -> Vec<Finding> {
    let toks = lex(text);
    let in_test = cfg_test_mask(&toks);
    let lines: Vec<&str> = text.lines().collect();
    // Indices of significant (non-comment) tokens.
    let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let tok_at = |s: Option<&usize>| s.map(|&i| &toks[i]);
    let mut findings = Vec::new();
    for (si, &ti) in sig.iter().enumerate() {
        if in_test[ti] {
            continue;
        }
        let t = &toks[ti];
        let prev = tok_at(si.checked_sub(1).and_then(|p| sig.get(p)));
        let next = tok_at(sig.get(si + 1));
        let next2 = tok_at(sig.get(si + 2));
        let mut hit = |check: &'static str| {
            findings.push(Finding {
                file: file.to_string(),
                line: t.line,
                check,
                excerpt: lines.get(t.line - 1).copied().unwrap_or(t.text).to_string(),
            });
        };
        match t.kind {
            TokKind::Ident => match t.text {
                "unwrap" if is_punct(prev, ".") && is_punct(next, "(") => hit("unwrap"),
                "expect" if is_punct(prev, ".") && is_punct(next, "(") => hit("expect"),
                "panic" if is_punct(next, "!") && is_punct(next2, "(") => hit("panic"),
                "unsafe" => hit("unsafe"),
                "println" if is_punct(next, "!") => hit("println"),
                "eprintln" if is_punct(next, "!") => hit("eprintln"),
                "thread"
                    if is_punct(next, "::")
                        && matches!(
                            next2.map(|t| t.text),
                            Some("spawn") | Some("scope") | Some("Builder")
                        ) =>
                {
                    hit("thread-spawn")
                }
                _ => {}
            },
            TokKind::Punct if t.text == "==" || t.text == "!=" => {
                let float = |t: Option<&Tok<'_>>| t.is_some_and(|t| t.kind == TokKind::Float);
                if float(prev) || float(next) {
                    hit("float-eq");
                }
            }
            _ => {}
        }
    }
    findings
}

fn is_punct(t: Option<&Tok<'_>>, text: &str) -> bool {
    t.is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

/// Checks that a crate root carries the two mandatory inner attributes.
pub fn check_crate_root(file: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !text.contains("#![warn(missing_docs)]") {
        findings.push(Finding {
            file: file.to_string(),
            line: 1,
            check: "missing-docs-lint",
            excerpt: "crate root lacks #![warn(missing_docs)]".to_string(),
        });
    }
    if !text.contains("#![forbid(unsafe_code)]") {
        findings.push(Finding {
            file: file.to_string(),
            line: 1,
            check: "missing-forbid-unsafe",
            excerpt: "crate root lacks #![forbid(unsafe_code)]".to_string(),
        });
    }
    findings
}

/// Per-token mask: `true` for tokens inside a `#[cfg(test)]`-gated item.
///
/// After a `#[cfg(test)]` attribute, any further attributes are skipped,
/// then the gated item extends to its closing brace (brace-matched on
/// tokens) or, for brace-less items like `use`, to the first `;`.
pub fn cfg_test_mask(toks: &[Tok<'_>]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let is = |s: usize, kind: TokKind, text: &str| {
        sig.get(s)
            .is_some_and(|&i| toks[i].kind == kind && toks[i].text == text)
    };
    let mut s = 0;
    while s < sig.len() {
        let attr_here = is(s, TokKind::Punct, "#")
            && is(s + 1, TokKind::Punct, "[")
            && is(s + 2, TokKind::Ident, "cfg")
            && is(s + 3, TokKind::Punct, "(")
            && is(s + 4, TokKind::Ident, "test")
            && is(s + 5, TokKind::Punct, ")")
            && is(s + 6, TokKind::Punct, "]");
        if !attr_here {
            s += 1;
            continue;
        }
        let start = s;
        s += 7;
        // Skip any further attributes (`#[test]`, `#[allow(...)]`, …).
        while is(s, TokKind::Punct, "#") && is(s + 1, TokKind::Punct, "[") {
            let mut depth = 0usize;
            while s < sig.len() {
                if is(s, TokKind::Punct, "[") {
                    depth += 1;
                } else if is(s, TokKind::Punct, "]") {
                    depth -= 1;
                    if depth == 0 {
                        s += 1;
                        break;
                    }
                }
                s += 1;
            }
        }
        // The gated item: to the matching close brace, or `;` if brace-less.
        let mut depth = 0usize;
        let mut opened = false;
        while s < sig.len() {
            if !opened && is(s, TokKind::Punct, ";") {
                s += 1;
                break;
            }
            if is(s, TokKind::Punct, "{") {
                depth += 1;
                opened = true;
            } else if is(s, TokKind::Punct, "}") {
                depth = depth.saturating_sub(1);
                if opened && depth == 0 {
                    s += 1;
                    break;
                }
            }
            s += 1;
        }
        let end_tok = sig
            .get(s.saturating_sub(1))
            .copied()
            .unwrap_or(toks.len() - 1);
        for m in &mut mask[sig[start]..=end_tok] {
            *m = true;
        }
    }
    mask
}

/// Runs the lint pass plus allowlist filtering over a single file's text —
/// the acceptance-test hook used by fixture tests.
pub fn lint_text(file: &str, text: &str, allow: &[AllowEntry]) -> Vec<Finding> {
    scan_source(file, text)
        .into_iter()
        .filter(|f| !allowed(allow, &f.file, f.check))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unwrap_expect_panic_in_library_code() {
        let src = "fn f() {\n    let x = g().unwrap();\n    let y = h().expect(\"no\");\n    panic!(\"boom\");\n}\n";
        let findings = scan_source("lib.rs", src);
        let checks: Vec<&str> = findings.iter().map(|f| f.check).collect();
        assert_eq!(checks, vec!["unwrap", "expect", "panic"]);
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[2].line, 4);
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "fn f() {\n    let x = g().unwrap_or(0);\n    let y = g().unwrap_or_else(|| 1);\n    let z = g().unwrap_or_default();\n}\n";
        assert!(scan_source("lib.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        g().unwrap();\n        panic!(\"ok in tests\");\n    }\n}\n";
        assert!(scan_source("lib.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_on_braceless_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse helper::panicky;\nfn f() { g().unwrap(); }\n";
        let findings = scan_source("lib.rs", src);
        assert_eq!(findings.len(), 1, "code after the gated use is scanned");
        assert_eq!(findings[0].check, "unwrap");
    }

    #[test]
    fn comments_strings_and_doctests_are_exempt() {
        let src = "//! let x = v.unwrap();\n/// calls `panic!(..)` on misuse\nfn f() {\n    let s = \".unwrap()\";\n    // panic!(\"not code\")\n    /* .expect( */\n    let r = r#\"panic!(\"raw\")\"#;\n    let _ = (s, r);\n}\n";
        assert!(scan_source("lib.rs", src).is_empty());
    }

    #[test]
    fn nested_block_comment_with_banned_call_is_exempt() {
        let src = "/* outer /* v.unwrap() */ still comment panic!( */\nfn f() {}\n";
        assert!(scan_source("lib.rs", src).is_empty());
    }

    #[test]
    fn unsafe_is_flagged_but_forbid_attr_is_not() {
        let clean = "#![forbid(unsafe_code)]\nfn f() {}\n";
        assert!(scan_source("lib.rs", clean).is_empty());
        let dirty = "fn f() {\n    unsafe { core::hint::unreachable_unchecked() }\n}\n";
        let findings = scan_source("lib.rs", dirty);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].check, "unsafe");
    }

    #[test]
    fn float_equality_is_flagged() {
        let hits = |src: &str| !scan_source("lib.rs", &format!("fn f() {{ {src} }}")).is_empty();
        assert!(hits("if x == 1.0 {}"));
        assert!(hits("if 0.5 != y {}"));
        assert!(hits("assert!(v == 1e-9);"));
        assert!(!hits("if x == 1 {}"));
        assert!(!hits("let r = 0.0..=1.0;"));
        assert!(!hits("if x <= 1.0 {}"));
        assert!(!hits("if x.to_bits() == y.to_bits() {}"));
        assert!(!hits("match x { 1 => 2.0, _ => 3.0 };"));
    }

    #[test]
    fn println_and_eprintln_are_flagged_separately() {
        let src = "fn f() {\n    println!(\"to stdout\");\n    eprintln!(\"to stderr\");\n}\n";
        let findings = scan_source("lib.rs", src);
        let checks: Vec<&str> = findings.iter().map(|f| f.check).collect();
        assert_eq!(checks, vec!["println", "eprintln"]);
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[1].line, 3);
    }

    #[test]
    fn prints_in_tests_comments_and_strings_are_exempt() {
        let src = "//! println!(\"doc\")\nfn f() {\n    let s = \"println!(inside a string)\";\n    let _ = s;\n}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        println!(\"debugging a test is fine\");\n        eprintln!(\"so is this\");\n    }\n}\n";
        assert!(scan_source("lib.rs", src).is_empty());
    }

    #[test]
    fn crate_root_attribute_checks() {
        let good = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\nfn f() {}\n";
        assert!(check_crate_root("lib.rs", good).is_empty());
        let bad = "fn f() {}\n";
        let findings = check_crate_root("lib.rs", bad);
        let checks: Vec<&str> = findings.iter().map(|f| f.check).collect();
        assert!(checks.contains(&"missing-docs-lint"));
        assert!(checks.contains(&"missing-forbid-unsafe"));
    }

    #[test]
    fn thread_primitives_are_flagged() {
        let src = "fn f() {\n    std::thread::spawn(|| {});\n    std::thread::scope(|_s| {});\n    let b = std::thread::Builder::new();\n}\n";
        let findings = scan_source("lib.rs", src);
        assert_eq!(findings.len(), 3);
        assert!(findings.iter().all(|f| f.check == "thread-spawn"));
        // Mentions in comments and strings are not findings.
        let clean = "// call thread::spawn here?\nfn f() {\n    let s = \"thread::scope\";\n    let _ = s;\n}\n";
        assert!(scan_source("lib.rs", clean).is_empty());
    }

    #[test]
    fn injected_banned_pattern_is_reported_and_allowlistable() {
        let src = "fn f() -> u32 {\n    std::env::var(\"X\").map(|v| v.len() as u32).unwrap()\n}\n";
        let findings = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(findings.len(), 1);
        let allow = vec![("crates/demo/src/lib.rs".to_string(), "unwrap".to_string())];
        assert!(lint_text("crates/demo/src/lib.rs", src, &allow).is_empty());
    }
}
