//! Workspace automation tasks, following the cargo-xtask convention.
//!
//! All logic lives in the `xtask` library (see `lib.rs`); this binary is
//! the thin CLI front:
//!
//! ```text
//! cargo run -p xtask -- lint
//! cargo run -p xtask -- analyze
//! cargo run -p xtask -- bench-diff bench-baseline.json BENCH.json [--threshold 0.15]
//! ```
//!
//! Exit codes: 0 clean, 1 findings/regressions, 2 usage/IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::bench_diff::bench_diff_command;
use xtask::{analyze, lint, load_allowlist, workspace_root, AllowEntry, Finding};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => findings_command("lint", lint::lint_workspace),
        Some("analyze") => findings_command("analyze", analyze::analyze_workspace),
        Some("bench-diff") => bench_diff_command(&args[1..]),
        Some(other) => {
            eprintln!("unknown task `{other}`; available tasks: lint, analyze, bench-diff");
            ExitCode::from(2)
        }
        None => {
            eprintln!(
                "usage: cargo run -p xtask -- lint\n       cargo run -p xtask -- analyze\n       cargo run -p xtask -- bench-diff <baseline.json> <current.json> [--threshold 0.15]"
            );
            ExitCode::from(2)
        }
    }
}

/// Shared driver for the finding-producing commands (`lint`, `analyze`):
/// locates the workspace, loads the allowlist, runs the pass, reports.
fn findings_command(
    name: &str,
    run: fn(&std::path::Path, &[AllowEntry]) -> Result<Vec<Finding>, String>,
) -> ExitCode {
    let root: PathBuf = match workspace_root() {
        Some(r) => r,
        None => {
            eprintln!("xtask: could not locate the workspace root");
            return ExitCode::from(2);
        }
    };
    let allow = match load_allowlist(&root.join("crates/xtask/lint-allow.txt")) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xtask: failed to read allowlist: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&root, &allow) {
        Ok(findings) if findings.is_empty() => {
            println!("xtask {name}: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("xtask {name}: {} finding(s)", findings.len());
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("xtask: {name} failed: {e}");
            ExitCode::from(2)
        }
    }
}
