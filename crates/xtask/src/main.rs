//! Workspace automation tasks, following the cargo-xtask convention.
//!
//! `lint` is a custom static-analysis pass over the *library* crates of
//! the balancing stack (`namespace`, `core`, `sim`, `util`, `workloads`,
//! `verify`). It enforces project rules that rustc and clippy do not cover
//! out of the box:
//!
//! - no `.unwrap()`, `.expect(` or `panic!(` in library code (typed errors
//!   or total fallbacks instead) — `#[cfg(test)]` blocks are exempt;
//! - no `unsafe` anywhere (belt to the `#![forbid(unsafe_code)]` braces);
//! - no direct `==` / `!=` against floating-point literals (use epsilon
//!   comparisons or bit-pattern equality);
//! - no `println!` / `eprintln!` in library code — observability goes
//!   through `lunule-telemetry`, and stdout belongs to the bench binaries;
//! - no `std::thread` usage (`thread::spawn` / `thread::scope` /
//!   `thread::Builder`) outside the sanctioned pool module
//!   `crates/util/src/par.rs` — ad-hoc threading could silently break the
//!   byte-identical-results determinism contract. This rule also covers
//!   the bench harness and xtask itself, which are otherwise exempt;
//! - every library crate root must carry `#![forbid(unsafe_code)]` and
//!   `#![warn(missing_docs)]`.
//!
//! Grandfathered sites live in `crates/xtask/lint-allow.txt` as
//! `<repo-relative-path> <check-id>` lines.
//!
//! `bench-diff` compares a fresh `BENCH.json` (from `cargo run --release
//! -p lunule-bench --bin perf`) against a checked-in baseline and fails
//! when any entry's `ns_per_op` regressed beyond the threshold (default
//! 40% — microbenchmarks on shared CI runners are noisy; the job guards
//! against step-change regressions, not percent-level drift).
//!
//! ```text
//! cargo run -p xtask -- lint
//! cargo run -p xtask -- bench-diff bench-baseline.json BENCH.json [--threshold 0.40]
//! ```
//!
//! Exit codes: 0 clean, 1 findings/regressions, 2 usage/IO error.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lunule_util::Json;

/// Library crates the lint pass covers (binaries and the bench harness are
/// exempt: aborting on a broken experiment config is the right behavior
/// there).
const LIB_CRATES: &[&str] = &[
    "namespace",
    "core",
    "sim",
    "util",
    "workloads",
    "verify",
    "telemetry",
    "faults",
];

/// Identifier of one lint rule, used in reports and allowlist entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Check {
    /// `.unwrap()` in library code.
    Unwrap,
    /// `.expect(` in library code.
    Expect,
    /// `panic!(` in library code.
    Panic,
    /// Any `unsafe` token.
    Unsafe,
    /// `==` / `!=` against a floating-point literal.
    FloatEq,
    /// `println!` in library code (stdout belongs to the binaries).
    Println,
    /// `eprintln!` in library code (report through typed errors instead).
    Eprintln,
    /// `std::thread` usage outside the sanctioned worker-pool module.
    ThreadSpawn,
    /// Crate root missing `#![warn(missing_docs)]`.
    MissingDocsLint,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    MissingForbidUnsafe,
}

impl Check {
    /// Stable name used in output and in the allowlist file.
    fn id(self) -> &'static str {
        match self {
            Check::Unwrap => "unwrap",
            Check::Expect => "expect",
            Check::Panic => "panic",
            Check::Unsafe => "unsafe",
            Check::FloatEq => "float-eq",
            Check::Println => "println",
            Check::Eprintln => "eprintln",
            Check::ThreadSpawn => "thread-spawn",
            Check::MissingDocsLint => "missing-docs-lint",
            Check::MissingForbidUnsafe => "missing-forbid-unsafe",
        }
    }
}

/// One lint hit: file, 1-based line, rule, and the offending line text.
#[derive(Debug, Clone)]
struct Finding {
    file: String,
    line: usize,
    check: Check,
    excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.check.id(),
            self.excerpt.trim()
        )
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_command(),
        Some("bench-diff") => bench_diff_command(&args[1..]),
        Some(other) => {
            eprintln!("unknown task `{other}`; available tasks: lint, bench-diff");
            ExitCode::from(2)
        }
        None => {
            eprintln!(
                "usage: cargo run -p xtask -- lint\n       cargo run -p xtask -- bench-diff <baseline.json> <current.json> [--threshold 0.40]"
            );
            ExitCode::from(2)
        }
    }
}

/// Runs the full lint pass from the workspace root and reports findings.
fn lint_command() -> ExitCode {
    let root = match workspace_root() {
        Some(r) => r,
        None => {
            eprintln!("xtask: could not locate the workspace root");
            return ExitCode::from(2);
        }
    };
    let allow = match load_allowlist(&root.join("crates/xtask/lint-allow.txt")) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xtask: failed to read allowlist: {e}");
            return ExitCode::from(2);
        }
    };
    match lint_workspace(&root, &allow) {
        Ok(findings) if findings.is_empty() => {
            println!("xtask lint: clean ({} library crates)", LIB_CRATES.len());
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("xtask lint: {} finding(s)", findings.len());
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("xtask: lint failed: {e}");
            ExitCode::from(2)
        }
    }
}

/// One entry parsed from a `BENCH.json` array: the benchmark name and its
/// wall-time cost per operation. The other emitted fields (`iters`,
/// `ops_per_sec`) are derived or informational and do not gate CI.
#[derive(Debug, Clone, PartialEq)]
struct BenchEntry {
    bench: String,
    ns_per_op: f64,
}

/// Outcome of comparing one baseline benchmark against the current run.
#[derive(Debug, Clone, PartialEq)]
enum Verdict {
    /// Within threshold; carries `current / baseline` for the report.
    Ok(f64),
    /// `current / baseline` exceeded `1 + threshold`.
    Regressed(f64),
    /// In the baseline but absent from the current run — a silently
    /// dropped benchmark must fail the gate, not shrink it.
    Missing,
}

/// Compares `current` against `baseline`: one verdict per baseline entry,
/// in baseline order. Entries that exist only in `current` are newly added
/// benchmarks and always pass (they gate once the baseline is refreshed).
fn compare_benches(
    baseline: &[BenchEntry],
    current: &[BenchEntry],
    threshold: f64,
) -> Vec<(String, Verdict)> {
    baseline
        .iter()
        .map(|b| {
            let verdict = match current.iter().find(|c| c.bench == b.bench) {
                None => Verdict::Missing,
                Some(c) => {
                    let ratio = if b.ns_per_op > 0.0 {
                        c.ns_per_op / b.ns_per_op
                    } else {
                        f64::INFINITY
                    };
                    if ratio > 1.0 + threshold {
                        Verdict::Regressed(ratio)
                    } else {
                        Verdict::Ok(ratio)
                    }
                }
            };
            (b.bench.clone(), verdict)
        })
        .collect()
}

/// Parses a `BENCH.json` document: a top-level array of objects with at
/// least a string `bench` and a numeric `ns_per_op` field.
fn parse_bench_entries(text: &str) -> Result<Vec<BenchEntry>, String> {
    let json = Json::parse(text).map_err(|e| e.to_string())?;
    let arr = json
        .as_arr()
        .ok_or_else(|| "top-level value must be an array".to_string())?;
    let mut out = Vec::new();
    for (i, item) in arr.iter().enumerate() {
        let bench = item
            .get("bench")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("entry {i}: missing string field `bench`"))?
            .to_string();
        let ns_per_op = item
            .get("ns_per_op")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("entry {i} ({bench}): missing numeric field `ns_per_op`"))?;
        out.push(BenchEntry { bench, ns_per_op });
    }
    Ok(out)
}

/// Implements `bench-diff <baseline.json> <current.json> [--threshold F]`.
fn bench_diff_command(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold = 0.40_f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threshold" {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t > 0.0 => threshold = t,
                _ => {
                    eprintln!("bench-diff: --threshold needs a positive number");
                    return ExitCode::from(2);
                }
            }
        } else {
            paths.push(a);
        }
    }
    let (baseline_path, current_path) = match paths.as_slice() {
        [b, c] => (b.as_str(), c.as_str()),
        _ => {
            eprintln!(
                "usage: cargo run -p xtask -- bench-diff <baseline.json> <current.json> [--threshold 0.40]"
            );
            return ExitCode::from(2);
        }
    };
    let load = |path: &str| -> Result<Vec<BenchEntry>, String> {
        let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        parse_bench_entries(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-diff: {e}");
            return ExitCode::from(2);
        }
    };

    let verdicts = compare_benches(&baseline, &current, threshold);
    println!(
        "{:<20} {:>12} {:>12} {:>7}  verdict (threshold +{:.0}%)",
        "bench",
        "base ns/op",
        "cur ns/op",
        "ratio",
        threshold * 100.0
    );
    let ns_of = |entries: &[BenchEntry], name: &str| {
        entries
            .iter()
            .find(|e| e.bench == name)
            .map(|e| e.ns_per_op)
    };
    let mut regressions = 0usize;
    for (name, verdict) in &verdicts {
        let base = ns_of(&baseline, name).unwrap_or(f64::NAN);
        match verdict {
            Verdict::Ok(ratio) => {
                let cur = ns_of(&current, name).unwrap_or(f64::NAN);
                println!("{name:<20} {base:>12.1} {cur:>12.1} {ratio:>6.2}x  ok");
            }
            Verdict::Regressed(ratio) => {
                let cur = ns_of(&current, name).unwrap_or(f64::NAN);
                println!("{name:<20} {base:>12.1} {cur:>12.1} {ratio:>6.2}x  REGRESSED");
                regressions += 1;
            }
            Verdict::Missing => {
                println!(
                    "{name:<20} {base:>12.1} {:>12} {:>7}  MISSING from current run",
                    "-", "-"
                );
                regressions += 1;
            }
        }
    }
    for c in &current {
        if !baseline.iter().any(|b| b.bench == c.bench) {
            println!(
                "{:<20} {:>12} {:>12.1} {:>7}  new (no baseline, passes)",
                c.bench, "-", c.ns_per_op, "-"
            );
        }
    }
    if regressions > 0 {
        println!("bench-diff: {regressions} regression(s)");
        ExitCode::from(1)
    } else {
        println!("bench-diff: clean ({} benchmark(s))", verdicts.len());
        ExitCode::SUCCESS
    }
}

/// Locates the workspace root: the manifest dir's grandparent when invoked
/// via cargo (`crates/xtask` → repo root), else the current directory.
fn workspace_root() -> Option<PathBuf> {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        return Some(p.parent()?.parent()?.to_path_buf());
    }
    std::env::current_dir().ok()
}

/// An allowlist entry: repo-relative path plus the check id it exempts.
type AllowEntry = (String, String);

/// Parses the allowlist file: `<path> <check-id>` per line, `#` comments.
/// A missing file is an empty allowlist.
fn load_allowlist(path: &Path) -> Result<Vec<AllowEntry>, String> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    parse_allowlist(&text)
}

/// Parses allowlist text (split out for tests).
fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some(path), Some(check), None) => {
                entries.push((path.to_string(), check.to_string()));
            }
            _ => {
                return Err(format!(
                    "allowlist line {}: expected `<path> <check-id>`, got `{raw}`",
                    i + 1
                ));
            }
        }
    }
    Ok(entries)
}

/// True when `(file, check)` is exempted by the allowlist.
fn allowed(allow: &[AllowEntry], file: &str, check: Check) -> bool {
    allow
        .iter()
        .any(|(p, c)| p == file && (c == check.id() || c == "*"))
}

/// Crates outside [`LIB_CRATES`] that still get the thread-spawn rule:
/// ad-hoc threading in the bench harness (or xtask itself) would break
/// deterministic result ordering just as surely as in library code.
const THREAD_RULE_CRATES: &[&str] = &["bench", "xtask"];

/// Lints every library crate under `root`, returning unexempted findings.
/// The bench harness and xtask are additionally scanned for the
/// thread-spawn rule only.
fn lint_workspace(root: &Path, allow: &[AllowEntry]) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    for krate in LIB_CRATES {
        let src_dir = root.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for file in files {
            let text = fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            findings.extend(scan_source(&rel, &text));
            if file.file_name().is_some_and(|n| n == "lib.rs") {
                findings.extend(check_crate_root(&rel, &text));
            }
        }
    }
    for krate in THREAD_RULE_CRATES {
        let src_dir = root.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for file in files {
            let text = fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            findings.extend(
                scan_source(&rel, &text)
                    .into_iter()
                    .filter(|f| f.check == Check::ThreadSpawn),
            );
        }
    }
    findings.retain(|f| !allowed(allow, &f.file, f.check));
    Ok(findings)
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans one source file for banned patterns. Comments and string literals
/// are blanked first, and `#[cfg(test)]`-gated blocks are exempt.
fn scan_source(file: &str, text: &str) -> Vec<Finding> {
    let code = strip_comments_and_strings(text);
    let in_test = test_block_mask(&code);
    let mut findings = Vec::new();
    let originals: Vec<&str> = text.lines().collect();
    for (i, line) in code.lines().enumerate() {
        if in_test[i] {
            continue;
        }
        let excerpt = originals.get(i).copied().unwrap_or(line);
        let mut hit = |check: Check| {
            findings.push(Finding {
                file: file.to_string(),
                line: i + 1,
                check,
                excerpt: excerpt.to_string(),
            });
        };
        if line.contains(".unwrap()") {
            hit(Check::Unwrap);
        }
        if line.contains(".expect(") {
            hit(Check::Expect);
        }
        if line.contains("panic!(") {
            hit(Check::Panic);
        }
        if has_word(line, "unsafe") {
            hit(Check::Unsafe);
        }
        if has_float_eq(line) {
            hit(Check::FloatEq);
        }
        // `has_word` keeps `println` from matching inside `eprintln`.
        if has_word(line, "println") {
            hit(Check::Println);
        }
        if has_word(line, "eprintln") {
            hit(Check::Eprintln);
        }
        if line.contains("thread::spawn")
            || line.contains("thread::scope")
            || line.contains("thread::Builder")
        {
            hit(Check::ThreadSpawn);
        }
    }
    findings
}

/// Checks that a crate root carries the two mandatory inner attributes.
fn check_crate_root(file: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !text.contains("#![warn(missing_docs)]") {
        findings.push(Finding {
            file: file.to_string(),
            line: 1,
            check: Check::MissingDocsLint,
            excerpt: "crate root lacks #![warn(missing_docs)]".to_string(),
        });
    }
    if !text.contains("#![forbid(unsafe_code)]") {
        findings.push(Finding {
            file: file.to_string(),
            line: 1,
            check: Check::MissingForbidUnsafe,
            excerpt: "crate root lacks #![forbid(unsafe_code)]".to_string(),
        });
    }
    findings
}

/// True when `word` occurs in `line` delimited by non-identifier characters
/// on both sides (so `unsafe_code` does not match `unsafe`).
fn has_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let before_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let after_ok = end == bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Detects `==` / `!=` where either side is a floating-point literal
/// (a digit run containing `.` or a `1e-9`-style exponent).
fn has_float_eq(line: &str) -> bool {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let op = (bytes[i] == b'=' || bytes[i] == b'!') && bytes[i + 1] == b'=';
        // Exclude `..=`, `<=`, `>=`, `==` chains and `=>`.
        let clean_left = i == 0 || !matches!(bytes[i - 1], b'=' | b'<' | b'>' | b'.' | b'!');
        let clean_right = i + 2 >= bytes.len() || bytes[i + 2] != b'=';
        if op && clean_left && clean_right {
            let left = line[..i].trim_end();
            let right = line[i + 2..].trim_start();
            if ends_with_float_literal(left) || starts_with_float_literal(right) {
                return true;
            }
        }
        i += 1;
    }
    false
}

/// True when `s` begins with a floating-point literal token.
fn starts_with_float_literal(s: &str) -> bool {
    let tok: String = s
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '.' || *c == '_')
        .collect();
    is_float_literal(&tok)
}

/// True when `s` ends with a floating-point literal token.
fn ends_with_float_literal(s: &str) -> bool {
    let tok: String = s
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '.' || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    is_float_literal(&tok)
}

/// True for tokens like `1.0`, `0.5_f64`, `1e-9` (after exponent-sign
/// stripping), but not for integers, idents, or version-like `a.b.c`.
fn is_float_literal(tok: &str) -> bool {
    let tok = tok.trim_end_matches("f64").trim_end_matches("f32");
    let tok = tok.trim_end_matches('_');
    if tok.is_empty() || !tok.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    let has_dot = tok.matches('.').count() == 1;
    let has_exp = tok.contains('e') || tok.contains('E');
    let digits_ok = tok
        .chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '.' | '_' | 'e' | 'E'));
    digits_ok && (has_dot || has_exp)
}

/// Per-line mask: `true` for lines inside a `#[cfg(test)]`-gated block.
/// After the attribute, everything from the next `{` through its matching
/// `}` is exempt (covers both `mod tests` and single gated items).
fn test_block_mask(code: &str) -> Vec<bool> {
    let lines: Vec<&str> = code.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].contains("#[cfg(test)]") {
            let mut depth = 0usize;
            let mut opened = false;
            let mut j = i;
            'outer: while j < lines.len() {
                mask[j] = true;
                for b in lines[j].bytes() {
                    match b {
                        b'{' => {
                            depth += 1;
                            opened = true;
                        }
                        b'}' => {
                            depth = depth.saturating_sub(1);
                            if opened && depth == 0 {
                                break 'outer;
                            }
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Replaces comments (line, nested block, doc) and string/char literals
/// with spaces, preserving line structure so reported line numbers match.
fn strip_comments_and_strings(text: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => match b {
                b'/' if next == Some(b'/') => {
                    state = State::LineComment;
                    out.extend_from_slice(b"  ");
                    i += 2;
                }
                b'/' if next == Some(b'*') => {
                    state = State::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                }
                b'"' => {
                    state = State::Str;
                    out.push(b' ');
                    i += 1;
                }
                b'r' if matches!(next, Some(b'"') | Some(b'#'))
                    && raw_str_hashes(bytes, i + 1).is_some() =>
                {
                    // Only treat as a raw string when `r` starts a token.
                    let starts_token = i == 0 || !is_ident_byte(bytes[i - 1]);
                    if let (true, Some(h)) = (starts_token, raw_str_hashes(bytes, i + 1)) {
                        state = State::RawStr(h);
                        let skip = 1 + h + 1; // r, hashes, quote
                        out.extend(std::iter::repeat_n(b' ', skip));
                        i += skip;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                }
                b'\'' => {
                    // Distinguish char literals from lifetimes: a lifetime is
                    // `'ident` not followed by a closing quote.
                    let is_lifetime = matches!(next, Some(n) if is_ident_byte(n))
                        && bytes.get(i + 2) != Some(&b'\'');
                    if is_lifetime {
                        out.push(b);
                        i += 1;
                    } else {
                        state = State::Char;
                        out.push(b' ');
                        i += 1;
                    }
                }
                b'\n' => {
                    out.push(b'\n');
                    i += 1;
                }
                _ => {
                    out.push(b);
                    i += 1;
                }
            },
            State::LineComment => {
                if b == b'\n' {
                    state = State::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && next == Some(b'/') {
                    let d = depth - 1;
                    state = if d == 0 {
                        State::Code
                    } else {
                        State::BlockComment(d)
                    };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && next == Some(b'*') {
                    state = State::BlockComment(depth + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'"' {
                    state = State::Code;
                    out.push(b' ');
                    i += 1;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' && closes_raw_str(bytes, i + 1, hashes) {
                    state = State::Code;
                    let skip = 1 + hashes;
                    out.extend(std::iter::repeat_n(b' ', skip));
                    i += skip;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::Char => {
                if b == b'\\' {
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'\'' {
                    state = State::Code;
                    out.push(b' ');
                    i += 1;
                } else {
                    out.push(b' ');
                    i += 1;
                }
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// For a raw string starting at `r` with hashes/quote at `pos`, returns the
/// number of `#`s when `bytes[pos..]` looks like `#*"`, else `None`.
fn raw_str_hashes(bytes: &[u8], pos: usize) -> Option<usize> {
    let mut h = 0;
    let mut i = pos;
    while bytes.get(i) == Some(&b'#') {
        h += 1;
        i += 1;
    }
    (bytes.get(i) == Some(&b'"')).then_some(h)
}

/// True when `bytes[pos..]` is exactly `hashes` `#`s (closing a raw string).
fn closes_raw_str(bytes: &[u8], pos: usize, hashes: usize) -> bool {
    (0..hashes).all(|k| bytes.get(pos + k) == Some(&b'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unwrap_expect_panic_in_library_code() {
        let src = "fn f() {\n    let x = g().unwrap();\n    let y = h().expect(\"no\");\n    panic!(\"boom\");\n}\n";
        let findings = scan_source("lib.rs", src);
        let checks: Vec<Check> = findings.iter().map(|f| f.check).collect();
        assert_eq!(checks, vec![Check::Unwrap, Check::Expect, Check::Panic]);
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[2].line, 4);
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "fn f() {\n    let x = g().unwrap_or(0);\n    let y = g().unwrap_or_else(|| 1);\n    let z = g().unwrap_or_default();\n}\n";
        assert!(scan_source("lib.rs", src).is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "fn f() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        g().unwrap();\n        panic!(\"ok in tests\");\n    }\n}\n";
        assert!(scan_source("lib.rs", src).is_empty());
    }

    #[test]
    fn comments_strings_and_doctests_are_exempt() {
        let src = "//! let x = v.unwrap();\n/// calls `panic!(..)` on misuse\nfn f() {\n    let s = \".unwrap()\";\n    // panic!(\"not code\")\n    /* .expect( */\n    let r = r#\"panic!(\"raw\")\"#;\n    let _ = (s, r);\n}\n";
        assert!(scan_source("lib.rs", src).is_empty());
    }

    #[test]
    fn unsafe_is_flagged_but_forbid_attr_is_not() {
        let clean = "#![forbid(unsafe_code)]\nfn f() {}\n";
        assert!(scan_source("lib.rs", clean).is_empty());
        let dirty = "fn f() {\n    unsafe { core::hint::unreachable_unchecked() }\n}\n";
        let findings = scan_source("lib.rs", dirty);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].check, Check::Unsafe);
    }

    #[test]
    fn float_equality_is_flagged() {
        assert!(has_float_eq("if x == 1.0 {"));
        assert!(has_float_eq("if 0.5 != y {"));
        assert!(has_float_eq("assert!(v == 1e-9);"));
        assert!(!has_float_eq("if x == 1 {"));
        assert!(!has_float_eq("let r = 0.0..=1.0;"));
        assert!(!has_float_eq("if x <= 1.0 {"));
        assert!(!has_float_eq("if x.to_bits() == y.to_bits() {"));
        assert!(!has_float_eq("match x { 1 => 2.0, _ => 3.0 }"));
    }

    #[test]
    fn println_and_eprintln_are_flagged_separately() {
        let src = "fn f() {\n    println!(\"to stdout\");\n    eprintln!(\"to stderr\");\n}\n";
        let findings = scan_source("lib.rs", src);
        let checks: Vec<Check> = findings.iter().map(|f| f.check).collect();
        assert_eq!(checks, vec![Check::Println, Check::Eprintln]);
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[1].line, 3);
    }

    #[test]
    fn prints_in_tests_comments_and_strings_are_exempt() {
        let src = "//! println!(\"doc\")\nfn f() {\n    let s = \"println!(inside a string)\";\n    let _ = s;\n}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        println!(\"debugging a test is fine\");\n        eprintln!(\"so is this\");\n    }\n}\n";
        assert!(scan_source("lib.rs", src).is_empty());
    }

    #[test]
    fn crate_root_attribute_checks() {
        let good = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\nfn f() {}\n";
        assert!(check_crate_root("lib.rs", good).is_empty());
        let bad = "fn f() {}\n";
        let findings = check_crate_root("lib.rs", bad);
        let checks: Vec<Check> = findings.iter().map(|f| f.check).collect();
        assert!(checks.contains(&Check::MissingDocsLint));
        assert!(checks.contains(&Check::MissingForbidUnsafe));
    }

    #[test]
    fn allowlist_parses_and_filters() {
        let text = "# grandfathered\ncrates/a/src/x.rs expect\ncrates/b/src/y.rs *\n\n";
        let allow = parse_allowlist(text).unwrap();
        assert_eq!(allow.len(), 2);
        assert!(allowed(&allow, "crates/a/src/x.rs", Check::Expect));
        assert!(!allowed(&allow, "crates/a/src/x.rs", Check::Unwrap));
        assert!(allowed(&allow, "crates/b/src/y.rs", Check::Panic));
        assert!(parse_allowlist("one-field-only\n").is_err());
    }

    #[test]
    fn injected_banned_pattern_is_reported_and_allowlistable() {
        // The acceptance check: a source tree with a banned call produces a
        // nonzero finding count, and the allowlist silences exactly it.
        let src = "fn f() -> u32 {\n    std::env::var(\"X\").map(|v| v.len() as u32).unwrap()\n}\n";
        let findings = scan_source("crates/demo/src/lib.rs", src);
        assert_eq!(findings.len(), 1);
        let allow = vec![("crates/demo/src/lib.rs".to_string(), "unwrap".to_string())];
        let kept: Vec<_> = findings
            .into_iter()
            .filter(|f| !allowed(&allow, &f.file, f.check))
            .collect();
        assert!(kept.is_empty());
    }

    #[test]
    fn thread_primitives_are_flagged() {
        let src = "fn f() {\n    std::thread::spawn(|| {});\n    std::thread::scope(|_s| {});\n    let b = std::thread::Builder::new();\n}\n";
        let findings = scan_source("lib.rs", src);
        assert_eq!(findings.len(), 3);
        assert!(findings.iter().all(|f| f.check == Check::ThreadSpawn));
        // Mentions in comments and strings are not findings.
        let clean = "// call thread::spawn here?\nfn f() {\n    let s = \"thread::scope\";\n    let _ = s;\n}\n";
        assert!(scan_source("lib.rs", clean).is_empty());
    }

    #[test]
    fn bench_json_round_trip_parses() {
        let text = "[\n  {\"bench\": \"a\", \"iters\": 10, \"ns_per_op\": 100.0, \"ops_per_sec\": 1.0e7},\n  {\"bench\": \"b\", \"iters\": 5, \"ns_per_op\": 42.5, \"ops_per_sec\": 2.35e7}\n]\n";
        let entries = parse_bench_entries(text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].bench, "a");
        assert!((entries[1].ns_per_op - 42.5).abs() < 1e-9);
        assert!(parse_bench_entries("{\"not\": \"an array\"}").is_err());
        assert!(parse_bench_entries("[{\"iters\": 3}]").is_err());
    }

    #[test]
    fn bench_compare_verdicts() {
        let entry = |name: &str, ns: f64| BenchEntry {
            bench: name.to_string(),
            ns_per_op: ns,
        };
        let baseline = vec![
            entry("tick", 100.0),
            entry("frag", 10.0),
            entry("gone", 5.0),
        ];
        let current = vec![
            entry("tick", 139.0),    // +39% — inside the 40% threshold
            entry("frag", 14.1),     // +41% — regression
            entry("brand_new", 1.0), // no baseline — passes
        ];
        let verdicts = compare_benches(&baseline, &current, 0.40);
        assert_eq!(verdicts.len(), 3);
        assert!(matches!(verdicts[0].1, Verdict::Ok(_)));
        assert!(matches!(verdicts[1].1, Verdict::Regressed(_)));
        assert_eq!(verdicts[2].1, Verdict::Missing);
        // Exactly at the threshold passes; strictly beyond fails.
        let at = compare_benches(&[entry("x", 100.0)], &[entry("x", 140.0)], 0.40);
        assert!(matches!(at[0].1, Verdict::Ok(_)));
        let over = compare_benches(&[entry("x", 100.0)], &[entry("x", 140.1)], 0.40);
        assert!(matches!(over[0].1, Verdict::Regressed(_)));
    }

    #[test]
    fn real_workspace_is_clean_under_the_checked_in_allowlist() {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .map(Path::to_path_buf)
            .unwrap();
        let allow = load_allowlist(&root.join("crates/xtask/lint-allow.txt")).unwrap();
        let findings = lint_workspace(&root, &allow).unwrap();
        assert!(
            findings.is_empty(),
            "workspace lint must stay clean:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
