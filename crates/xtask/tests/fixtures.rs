//! Fixture-driven integration tests for the static-analysis suite.
//!
//! Each analysis pass gets a positive fixture (code that must be flagged)
//! and a negative fixture (commented, quoted, test-gated or provably-safe
//! occurrences that must NOT be flagged), so false-positive regressions in
//! the token-aware passes fail loudly here. The fixtures live under
//! `tests/fixtures/` and are lexed, never compiled.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

use xtask::analyze::{
    analyze_workspace, cast_scan, determinism_scan, layering_check, CrateLayer, LAYERING,
};
use xtask::lexer::{lex, literal_suffix, TokKind};
use xtask::lint::lint_workspace;
use xtask::{load_allowlist, workspace_root};

const DET_POSITIVE: &str = include_str!("fixtures/det_positive.rs");
const DET_NEGATIVE: &str = include_str!("fixtures/det_negative.rs");
const CAST_POSITIVE: &str = include_str!("fixtures/cast_positive.rs");
const CAST_NEGATIVE: &str = include_str!("fixtures/cast_negative.rs");
const LEXER_TOUR: &str = include_str!("fixtures/lexer_tour.rs");

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[test]
fn lexer_tour_classifies_every_token_shape() {
    let toks = lex(LEXER_TOUR);
    let count = |k: TokKind| toks.iter().filter(|t| t.kind == k).count();

    assert_eq!(count(TokKind::Str), 3, "plain, byte, and final string");
    assert_eq!(count(TokKind::RawStr), 2, "r#…# and br##…##");
    assert_eq!(count(TokKind::Char), 2, "escaped quote and newline chars");
    assert_eq!(count(TokKind::Lifetime), 3, "two 'a plus 'static");
    assert_eq!(count(TokKind::BlockComment), 1, "nested block is one token");
    assert_eq!(
        count(TokKind::LineComment),
        3,
        "two doc lines plus trailing"
    );

    // Raw identifier, not a raw string: both `r#type` occurrences.
    let raw_idents = toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident && t.text == "r#type")
        .count();
    assert_eq!(raw_idents, 2);

    // `0x1f32` is an integer whose hex digits spell a float suffix.
    let hex = toks
        .iter()
        .find(|t| t.text == "0x1f32")
        .expect("hex literal present");
    assert_eq!(hex.kind, TokKind::Int);
    assert_eq!(literal_suffix(hex.text), "");

    // `2.5e-3_f32` is one float token with a real suffix.
    let exp = toks
        .iter()
        .find(|t| t.text == "2.5e-3_f32")
        .expect("exponent literal present");
    assert_eq!(exp.kind, TokKind::Float);
    assert_eq!(literal_suffix(exp.text), "f32");

    // `0..10` produced a range punct, not a float.
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::Punct && t.text == ".."));
}

// ---------------------------------------------------------------------------
// Determinism auditor
// ---------------------------------------------------------------------------

#[test]
fn determinism_positive_fixture_flags_each_hazard_once() {
    let findings = determinism_scan("fixture.rs", DET_POSITIVE);
    let checks: Vec<&str> = findings.iter().map(|f| f.check).collect();
    assert_eq!(
        checks,
        vec!["det-collection", "det-clock", "det-env", "det-random"],
        "{findings:?}"
    );
}

#[test]
fn determinism_negative_fixture_is_clean() {
    let findings = determinism_scan("fixture.rs", DET_NEGATIVE);
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// Cast-safety lint
// ---------------------------------------------------------------------------

#[test]
fn cast_positive_fixture_flags_lossy_casts_and_stale_waiver() {
    let findings = cast_scan("fixture.rs", CAST_POSITIVE);
    let lossy = findings.iter().filter(|f| f.check == "cast-lossy").count();
    let stale = findings
        .iter()
        .filter(|f| f.check == "stale-cast-waiver")
        .count();
    assert_eq!(lossy, 3, "{findings:?}");
    assert_eq!(stale, 1, "{findings:?}");
}

#[test]
fn cast_negative_fixture_is_clean() {
    let findings = cast_scan("fixture.rs", CAST_NEGATIVE);
    assert!(findings.is_empty(), "{findings:?}");
}

// ---------------------------------------------------------------------------
// Crate-layering checker (synthetic workspace)
// ---------------------------------------------------------------------------

/// Materialises a minimal fake workspace matching [`LAYERING`], applies
/// `mutate` to it, runs [`layering_check`], cleans up, and returns the
/// findings' excerpts.
fn layering_findings_with(tag: &str, mutate: impl Fn(&PathBuf)) -> Vec<String> {
    let root = std::env::temp_dir().join(format!("xtask-layering-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    for layer in LAYERING {
        let CrateLayer { name, dir, deps } = layer;
        let crate_dir = root.join(dir);
        fs::create_dir_all(crate_dir.join("src")).expect("mkdir fixture crate");
        let mut manifest = format!("[package]\nname = \"{name}\"\n\n[dependencies]\n");
        for dep in *deps {
            manifest.push_str(&format!("{dep} = {{ workspace = true }}\n"));
        }
        fs::write(crate_dir.join("Cargo.toml"), manifest).expect("write manifest");
        fs::write(crate_dir.join("src").join("lib.rs"), "//! Fixture crate.\n")
            .expect("write lib.rs");
    }
    mutate(&root);
    let findings = layering_check(&root).expect("layering check runs");
    let _ = fs::remove_dir_all(&root);
    findings.iter().map(|f| f.excerpt.clone()).collect()
}

#[test]
fn layering_accepts_a_workspace_matching_the_table() {
    let excerpts = layering_findings_with("clean", |_| {});
    assert!(excerpts.is_empty(), "{excerpts:?}");
}

#[test]
fn layering_flags_a_manifest_back_edge() {
    let excerpts = layering_findings_with("backedge", |root| {
        let manifest = root.join("crates/util/Cargo.toml");
        let mut text = fs::read_to_string(&manifest).expect("read manifest");
        text.push_str("lunule-core = { workspace = true }\n");
        fs::write(&manifest, text).expect("write manifest");
    });
    assert!(
        excerpts
            .iter()
            .any(|e| e.contains("must not depend on `lunule-core`")),
        "{excerpts:?}"
    );
}

#[test]
fn layering_flags_an_undeclared_source_reference() {
    let excerpts = layering_findings_with("srcref", |root| {
        fs::write(
            root.join("crates/telemetry/src/lib.rs"),
            "//! Fixture.\npub fn f() { lunule_core::g(); }\n",
        )
        .expect("write lib.rs");
    });
    assert!(
        excerpts
            .iter()
            .any(|e| e.contains("references `lunule-core` without declaring it")),
        "{excerpts:?}"
    );
}

#[test]
fn layering_flags_a_crate_directory_missing_from_the_table() {
    let excerpts = layering_findings_with("rogue", |root| {
        fs::create_dir_all(root.join("crates/rogue")).expect("mkdir rogue");
    });
    assert!(
        excerpts
            .iter()
            .any(|e| e.contains("`crates/rogue` is not in the layering table")),
        "{excerpts:?}"
    );
}

// ---------------------------------------------------------------------------
// The real workspace is clean under the checked-in allowlist
// ---------------------------------------------------------------------------

#[test]
fn real_workspace_is_clean_under_the_checked_in_allowlist() {
    let root = workspace_root().expect("workspace root");
    let allow = load_allowlist(&root.join("crates/xtask/lint-allow.txt")).expect("allowlist loads");
    let lint = lint_workspace(&root, &allow).expect("lint runs");
    assert!(lint.is_empty(), "lint findings: {lint:?}");
    let analyze = analyze_workspace(&root, &allow).expect("analyze runs");
    assert!(analyze.is_empty(), "analyze findings: {analyze:?}");
    // And every allowlist entry is live: covered by the stale check above,
    // but assert the list stayed small too. It may only grow for a newly
    // *designated* boundary module (like the daemon's pacing layer, the
    // one sanctioned wall-clock/thread site) — never for convenience.
    assert!(allow.len() <= 8, "allowlist grew: {allow:?}");
}

// ---------------------------------------------------------------------------
// Fixture hygiene: the fixtures directory holds exactly the files the
// tests above reference (a renamed fixture would silently skip coverage).
// ---------------------------------------------------------------------------

#[test]
fn fixture_directory_matches_expectations() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let names: BTreeSet<String> = fs::read_dir(dir)
        .expect("fixtures dir")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    let expected: BTreeSet<String> = [
        "det_positive.rs",
        "det_negative.rs",
        "cast_positive.rs",
        "cast_negative.rs",
        "lexer_tour.rs",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    assert_eq!(names, expected);
}
