//! Fixture: casts that must pass the safety lint without a waiver —
//! suffixed-literal widenings, fitting unsuffixed literals, proven cast
//! chains, waived casts, and casts inside test code. (A bare `x as u64`
//! is deliberately absent: one token proves nothing about `x`, so the
//! lint demands a named helper or a waiver for it.)

pub fn suffixed_widening() -> u64 {
    7u32 as u64
}

pub fn suffixed_unsigned_into_wider_signed() -> i64 {
    7u32 as i64
}

pub fn literal_fits() -> u32 {
    300 as u32
}

pub fn hex_literal_fits() -> u8 {
    0xFF as u8
}

pub fn chain_widens() -> u64 {
    7u16 as u32 as u64
}

pub fn small_literal_exact_in_float() -> f64 {
    42 as f64
}

pub fn float_literal_default() -> f64 {
    1.5 as f64
}

pub fn waived(x: u64) -> u32 {
    x as u32 // as-ok: callers mask to 24 bits first
}

pub fn waived_above(x: u64) -> u16 {
    // as-ok: waiver on the preceding line covers the cast below
    x as u16
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_cast() {
        let x = 70_000u64;
        assert_eq!(x as u16, 4_464);
    }
}
