//! Fixture: casts the safety lint must flag, plus one dead waiver.

pub fn lossy_narrowing(x: u64) -> u16 {
    x as u16
}

pub fn lossy_signed(x: i64) -> u64 {
    x as u64
}

pub fn lossy_float(x: f64) -> f32 {
    x as f32
}

// as-ok: this waiver covers no cast and must be reported as stale
pub fn no_cast_here() {}
