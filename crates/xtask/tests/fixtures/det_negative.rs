//! Fixture: mentions that must NOT trip the determinism auditor.
//! A HashMap in a line comment is documentation, and so is SystemTime.

/* Block comments may discuss Instant and RandomState freely. */

/// Doc comments naming HashSet or std::env are documentation too.
pub fn clean() -> &'static str {
    "HashMap, SystemTime, Instant, RandomState, std::env — all in a string"
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn tests_may_hash_and_clock() {
        let mut m = HashMap::new();
        m.insert(1u32, std::time::Instant::now());
        assert_eq!(m.len(), 1);
    }
}
