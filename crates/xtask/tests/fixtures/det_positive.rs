//! Fixture: one genuine occurrence of every determinism hazard. The
//! auditor must report exactly one finding per check on the lines below.

pub fn hazards() {
    let _m = std::collections::HashMap::<u32, u32>::new();
    let _t = std::time::Instant::now();
    let _v = std::env::var("X");
    let _s = std::collections::hash_map::RandomState::new();
}
