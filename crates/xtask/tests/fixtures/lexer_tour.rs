//! Fixture: a tour of the token shapes the lexer must classify without
//! ever confusing code with text. This file is lexed, never compiled.

/* A nested /* block */ comment is one token. */

pub fn tour<'a>(s: &'a str) -> usize {
    let _plain = "a \" escaped quote and a // non-comment";
    let _raw = r#"raw "inner" text with # marks"#;
    let _bytes = b"byte string";
    let _braw = br##"raw # bytes"##;
    let _quote = '\'';
    let _newline = '\n';
    let r#type = 1u64 << 3;
    let _exp = 2.5e-3_f32;
    let _hex = 0x1f32; // an integer: f32 here is hex digits, not a suffix
    let _range = 0..10;
    let _static: &'static str = "done";
    s.len() + r#type as usize
}
