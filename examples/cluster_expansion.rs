//! Domain scenario: growing the metadata cluster under load — the paper's
//! dynamic-adaptation story (Fig. 12a). A Zipfian workload runs on three
//! MDSs; two more are added mid-run, and Lunule folds them into the cluster
//! without manual re-partitioning.
//!
//! ```sh
//! cargo run --release --example cluster_expansion
//! ```

use lunule::core::{make_balancer, BalancerKind};
use lunule::sim::{SimConfig, Simulation};
use lunule::workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec {
        kind: WorkloadKind::ZipfRead,
        clients: 30,
        scale: 0.3,
        seed: 99,
    };
    let cfg = SimConfig {
        n_mds: 3,
        mds_capacity: 300.0,
        epoch_secs: 10,
        duration_secs: 900,
        stop_when_done: false,
        client_rate: 40.0,
        ..SimConfig::default()
    };
    let (ns, streams) = spec.build();
    let balancer = make_balancer(BalancerKind::Lunule, cfg.mds_capacity);
    let mut sim = Simulation::new(cfg.clone(), ns, balancer, streams);

    println!("phase 1: three MDSs");
    sim.run_until(300);
    println!("  -> adding mds.3 at t=300s");
    sim.add_mds();
    sim.run_until(600);
    println!("  -> adding mds.4 at t=600s");
    sim.add_mds();
    sim.run_until(900);

    let result = sim.finish();
    let phase_mean = |lo: u64, hi: u64| {
        let v: Vec<f64> = result
            .epochs
            .iter()
            .filter(|e| e.time_secs > lo && e.time_secs <= hi)
            .map(|e| e.total_iops)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    println!("\naggregate throughput by phase:");
    println!("  3 MDSs (  0-300s): {:>7.0} IOPS", phase_mean(60, 300));
    println!("  4 MDSs (300-600s): {:>7.0} IOPS", phase_mean(360, 600));
    println!("  5 MDSs (600-900s): {:>7.0} IOPS", phase_mean(660, 900));
    println!(
        "\nlast epoch per-MDS requests: {:?}",
        result
            .epochs
            .last()
            .map(|e| e.per_mds_requests.clone())
            .unwrap_or_default()
    );
    println!(
        "migrated {} inodes in total; imbalance factor ended at {:.3}",
        result.migrated_inodes(),
        result
            .epochs
            .last()
            .map(|e| e.imbalance_factor)
            .unwrap_or(0.0)
    );
}
