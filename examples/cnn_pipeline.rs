//! Domain scenario: the CNN pre-processing pipeline that motivates the
//! paper. 40 training workers scan an ImageNet-shaped dataset concurrently;
//! compare how the stock CephFS balancer and Lunule spread that scan over a
//! five-MDS cluster.
//!
//! ```sh
//! cargo run --release --example cnn_pipeline
//! ```

use lunule::core::{make_balancer, BalancerKind};
use lunule::sim::{SimConfig, Simulation};
use lunule::workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec {
        kind: WorkloadKind::Cnn,
        clients: 40,
        scale: 0.02,
        seed: 7,
    };
    let sim = SimConfig {
        n_mds: 5,
        mds_capacity: 400.0,
        epoch_secs: 10,
        duration_secs: 3_600,
        client_rate: 40.0,
        ..SimConfig::default()
    };

    println!("CNN pre-processing: 40 workers scanning an ImageNet-shaped dataset\n");
    println!(
        "{:<10} {:>9} {:>10} {:>12} {:>12}",
        "balancer", "mean IF", "mean IOPS", "migrated", "JCT p99 (s)"
    );
    for kind in [BalancerKind::Vanilla, BalancerKind::Lunule] {
        let (ns, streams) = spec.build();
        let balancer = make_balancer(kind, sim.mds_capacity);
        let result = Simulation::new(sim.clone(), ns, balancer, streams).run();
        let jct = result
            .jct_percentile(0.99)
            .map(|v| v.to_string())
            .unwrap_or_else(|| "unfinished".into());
        println!(
            "{:<10} {:>9.3} {:>10.0} {:>12} {:>12}",
            result.balancer,
            result.mean_if(),
            result.mean_iops(),
            result.migrated_inodes(),
            jct
        );
    }
    println!(
        "\nA scan never re-visits files, so hotness-based selection migrates \
         directories that are already finished; Lunule's migration index \
         ships the *unread* remainder instead and the whole cluster joins in."
    );
}
