//! Extension scenario: plugging a custom policy into the simulator.
//!
//! The `Balancer` trait is the seam the paper's Mantle framework exposes in
//! CephFS; here we implement a deliberately simple "round-robin spill"
//! policy in ~40 lines and race it against Lunule on the MDtest workload.
//!
//! ```sh
//! cargo run --release --example custom_balancer
//! ```

use lunule::core::{
    build_candidates, make_balancer, select_hottest, Access, Balancer, BalancerKind, EpochStats,
    ExportTask, HeatMap, MigrationPlan,
};
use lunule::namespace::{MdsRank, Namespace, SubtreeMap};
use lunule::sim::{SimConfig, Simulation};
use lunule::workloads::{WorkloadKind, WorkloadSpec};

/// Every epoch, the busiest rank spills a fixed quantum of its hottest
/// subtrees to the least busy rank. No model, no thresholds.
struct RoundRobinSpill {
    heat: HeatMap,
    quantum: f64,
}

impl RoundRobinSpill {
    fn new(quantum: f64) -> Self {
        RoundRobinSpill {
            heat: HeatMap::new(0.5),
            quantum,
        }
    }
}

impl Balancer for RoundRobinSpill {
    fn name(&self) -> &'static str {
        "RoundRobinSpill"
    }

    fn record_access(&mut self, ns: &Namespace, access: Access) {
        self.heat.record(ns, access.ino);
    }

    fn on_epoch(&mut self, ns: &Namespace, map: &SubtreeMap, stats: &EpochStats) -> MigrationPlan {
        self.heat.decay_epoch();
        let loads = stats.iops();
        let Some(busiest) = (0..loads.len()).max_by(|a, b| loads[*a].total_cmp(&loads[*b])) else {
            return MigrationPlan::default();
        };
        let Some(idlest) = (0..loads.len()).min_by(|a, b| loads[*a].total_cmp(&loads[*b])) else {
            return MigrationPlan::default();
        };
        if busiest == idlest || loads[busiest] < 2.0 * loads[idlest] + 1.0 {
            return MigrationPlan::default();
        }
        let heat = &self.heat;
        let candidates = build_candidates(ns, map, &|d| heat.heat_of(d));
        let exporter = MdsRank(busiest as u16);
        let subtrees = select_hottest(ns, &candidates, self.quantum, exporter);
        if subtrees.is_empty() {
            return MigrationPlan::default();
        }
        MigrationPlan {
            exports: vec![ExportTask {
                from: exporter,
                to: MdsRank(idlest as u16),
                target_amount: self.quantum,
                subtrees,
            }],
        }
    }
}

fn main() {
    let spec = WorkloadSpec {
        kind: WorkloadKind::MdCreate,
        clients: 30,
        scale: 0.02,
        seed: 5,
    };
    let cfg = SimConfig {
        n_mds: 5,
        mds_capacity: 300.0,
        epoch_secs: 10,
        duration_secs: 1_200,
        client_rate: 40.0,
        ..SimConfig::default()
    };

    println!("custom policies vs Lunule, MDtest create\n");
    println!(
        "{:<20} {:>9} {:>10} {:>10}",
        "balancer", "mean IF", "mean IOPS", "migrated"
    );
    for balancer in [
        Box::new(RoundRobinSpill::new(2_000.0)) as Box<dyn Balancer>,
        // The same idea expressed through the Mantle-style framework the
        // paper's Section 3.4 envisions: three policy hooks, no struct.
        Box::new(lunule::core::ProgrammableBalancer::greedy_spill_policy()),
        make_balancer(BalancerKind::Lunule, cfg.mds_capacity),
    ] {
        let (ns, streams) = spec.build();
        let result = Simulation::new(cfg.clone(), ns, balancer, streams).run();
        println!(
            "{:<20} {:>9.3} {:>10.0} {:>10}",
            result.balancer,
            result.mean_if(),
            result.mean_iops(),
            result.migrated_inodes()
        );
    }
}
