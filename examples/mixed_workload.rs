//! Domain scenario: a shared cluster running four different applications at
//! once (the paper's mixed workload, Section 4.4) — ML pre-processing,
//! corpus training, web serving, and a Zipfian file service — and how the
//! balancer choice shows up in every client's job completion time.
//!
//! ```sh
//! cargo run --release --example mixed_workload
//! ```

use lunule::core::{make_balancer, BalancerKind};
use lunule::sim::{SimConfig, Simulation};
use lunule::workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let spec = WorkloadSpec {
        kind: WorkloadKind::Mixed,
        clients: 60,
        scale: 0.05,
        seed: 2024,
    };
    let cfg = SimConfig {
        n_mds: 5,
        mds_capacity: 300.0,
        epoch_secs: 10,
        duration_secs: 7_200,
        client_rate: 50.0,
        ..SimConfig::default()
    };

    println!("mixed workload: 60 clients in four groups (CNN/NLP/Web/Zipf)\n");
    println!(
        "{:<10} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "balancer", "mean IF", "mean IOPS", "p50 JCT", "p99 JCT", "all done"
    );
    for kind in [BalancerKind::Vanilla, BalancerKind::Lunule] {
        let (ns, streams) = spec.build();
        let balancer = make_balancer(kind, cfg.mds_capacity);
        let result = Simulation::new(cfg.clone(), ns, balancer, streams).run();
        let pct = |q: f64| {
            result
                .jct_percentile(q)
                .map(|v| format!("{v}s"))
                .unwrap_or_else(|| "n/a".into())
        };
        println!(
            "{:<10} {:>9.3} {:>10.0} {:>10} {:>10} {:>9}s",
            result.balancer,
            result.mean_if(),
            result.mean_iops(),
            pct(0.5),
            pct(0.99),
            result.duration_secs
        );
    }
    println!(
        "\nGroups finish at different times, re-creating imbalance all run \
         long; the tail (p99) is where judicious re-balancing pays off."
    );
}
