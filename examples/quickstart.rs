//! Quickstart: build a tiny namespace, run a short simulation with the
//! Lunule balancer, and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use lunule::core::{make_balancer, BalancerKind};
use lunule::namespace::{InodeId, Namespace};
use lunule::sim::{FixedStream, OpStream, SimConfig, Simulation};

fn main() {
    // 1. Build a namespace: sixteen project directories of 100 files each.
    let mut ns = Namespace::new();
    let mut all_files = Vec::new();
    for p in 0..16 {
        let dir = ns.mkdir(InodeId::ROOT, &format!("project{p:02}")).unwrap();
        for f in 0..100 {
            all_files.push(ns.create_file(dir, &format!("file{f}"), 4096).unwrap());
        }
    }
    println!(
        "namespace: {} dirs, {} files",
        ns.dir_count(),
        ns.file_count()
    );

    // 2. Eight clients, each sweeping over every file five times. All the
    //    metadata initially lives on mds.0 — classic CephFS cold start.
    let streams: Vec<Box<dyn OpStream>> = (0..8)
        .map(|_| {
            let mut ops = all_files.clone();
            for _ in 0..4 {
                ops.extend(all_files.iter().copied());
            }
            Box::new(FixedStream::new(ops)) as Box<dyn OpStream>
        })
        .collect();

    // 3. A 3-MDS cluster driven by the Lunule balancer.
    let cfg = SimConfig {
        n_mds: 3,
        mds_capacity: 200.0,
        epoch_secs: 5,
        duration_secs: 300,
        client_rate: 60.0,
        ..SimConfig::default()
    };
    let balancer = make_balancer(BalancerKind::Lunule, cfg.mds_capacity);
    let result = Simulation::new(cfg.clone(), ns, balancer, streams).run();

    // 4. Inspect the run.
    println!(
        "served {} metadata ops in {} simulated seconds",
        result.total_ops, result.duration_secs
    );
    println!("per-MDS totals: {:?}", result.per_mds_requests_total);
    println!(
        "migrated {} inodes across {} epochs; final imbalance factor {:.3}",
        result.migrated_inodes(),
        result.epochs.len(),
        result
            .epochs
            .last()
            .map(|e| e.imbalance_factor)
            .unwrap_or(0.0)
    );
    for e in result.epochs.iter().take(10) {
        println!(
            "  t={:>3}s IF={:.3} IOPS={:>6.0} per-mds={:?}",
            e.time_secs, e.imbalance_factor, e.total_iops, e.per_mds_requests
        );
    }
}
