//! Domain scenario: replaying a real access trace. The paper's Web
//! workload replays an Apache log; this example shows the same path with
//! your own trace file — one path per line — synthesising a small one
//! inline for the demo.
//!
//! ```sh
//! cargo run --release --example trace_replay            # built-in demo trace
//! cargo run --release --example trace_replay /path/to/trace.txt
//! ```

use lunule::core::{make_balancer, BalancerKind};
use lunule::namespace::{Namespace, NamespaceStats};
use lunule::sim::{SimConfig, Simulation};
use lunule::workloads::{load_trace, trace_streams};

fn demo_trace() -> String {
    // A tiny synthetic "web server" log: a hot front page, warm docs, and
    // a long tail of rarely hit assets.
    let mut t = String::from("# demo trace\n");
    for round in 0..200 {
        t.push_str("/www/index.html\n");
        if round % 2 == 0 {
            t.push_str("/www/docs/guide.html\n");
        }
        if round % 5 == 0 {
            t.push_str(&format!("/www/blog/post{:03}.html\n", round % 40));
        }
        t.push_str(&format!("/www/assets/img{:04}.png\n", round * 7 % 500));
    }
    t
}

fn main() {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read trace {path}: {e}")),
        None => demo_trace(),
    };

    let mut ns = Namespace::new();
    let trace = load_trace(&mut ns, &text, 16 << 10);
    println!(
        "trace: {} accesses over {} distinct files",
        trace.accesses.len(),
        trace.distinct_files
    );
    println!("namespace: {}", NamespaceStats::of(&ns));

    let clients = 20;
    let streams = trace_streams(&trace, clients);
    let cfg = SimConfig {
        n_mds: 3,
        mds_capacity: 200.0,
        epoch_secs: 5,
        duration_secs: 1_200,
        client_rate: 30.0,
        ..SimConfig::default()
    };
    let balancer = make_balancer(BalancerKind::Lunule, cfg.mds_capacity);
    let result = Simulation::new(cfg.clone(), ns, balancer, streams).run();

    println!(
        "\n{} clients replayed the trace in {} simulated seconds",
        clients, result.duration_secs
    );
    println!(
        "mean IF {:.3}, aggregate {:.0} IOPS, per-MDS totals {:?}",
        result.mean_if(),
        result.mean_iops(),
        result.per_mds_requests_total
    );
    println!(
        "stall latency: {:.1}% immediate, p99 = {} ticks",
        result.latency.immediate_share() * 100.0,
        result.latency.percentile(0.99)
    );
}
