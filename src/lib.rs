//! # lunule
//!
//! Facade crate for the Lunule reproduction: re-exports the namespace
//! substrate, the balancing algorithms (the paper's contribution), the MDS
//! cluster simulator, and the workload generators under one roof so examples
//! and downstream users need a single dependency.
//!
//! See `README.md` for a tour and `DESIGN.md` for the architecture.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lunule_core as core;
pub use lunule_daemon as daemon;
pub use lunule_faults as faults;
pub use lunule_namespace as namespace;
pub use lunule_sim as sim;
pub use lunule_telemetry as telemetry;
pub use lunule_workloads as workloads;

/// Convenience prelude bringing the types most programs need into scope.
pub mod prelude {
    pub use lunule_core::{Balancer, BalancerKind, ImbalanceFactorModel, MigrationPlan};
    pub use lunule_daemon::{Daemon, Session};
    pub use lunule_faults::{FaultPlan, FaultSchedule};
    pub use lunule_namespace::{FileType, Frag, FragKey, InodeId, MdsRank, Namespace, SubtreeMap};
    pub use lunule_sim::{RunResult, SimConfig, Simulation};
    pub use lunule_telemetry::Telemetry;
    pub use lunule_workloads::{WorkloadKind, WorkloadSpec};
}
