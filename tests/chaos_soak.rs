//! Chaos soak: many seeded fault schedules replayed against full
//! simulations, with the migration-lifecycle ledger, the telemetry
//! journal, and the subtree map audited after every run.
//!
//! Under `--features strict-invariants` the simulator additionally audits
//! itself every tick (including the authority-never-on-a-down-rank check),
//! so a green run of this file under that feature is the "zero violations
//! across ≥50 seeded fault schedules" acceptance check.

use lunule_core::{make_balancer, BalancerKind};
use lunule_sim::{seeded, ChaosProfile, SimConfig, Simulation};
use lunule_util::propcheck;
use lunule_verify::InvariantChecker;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

/// One chaos case: a seeded schedule against a small, migration-heavy
/// cluster. Returns nothing — every property is asserted inside.
fn soak_one(seed: u64, profile: &ChaosProfile) {
    const N_MDS: usize = 4;
    const DURATION: u64 = 140;
    let (ns, streams) = WorkloadSpec {
        kind: WorkloadKind::ZipfRead,
        clients: 6,
        scale: 0.005,
        seed: seed ^ 0x9E37,
    }
    .build();
    let cfg = SimConfig {
        n_mds: N_MDS,
        mds_capacity: 100.0,
        epoch_secs: 4,
        duration_secs: DURATION,
        stop_when_done: false,
        migration_bw: 25.0,
        migration_freeze_secs: 1,
        migration_op_cost: 0.02,
        migration_timeout_ticks: 6,
        migration_max_retries: 2,
        migration_backoff_ticks: 2,
        client_rate: 30.0,
        seed,
        telemetry: lunule_telemetry::Telemetry::enabled(),
        faults: seeded(seed, N_MDS, DURATION, profile),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(
        cfg.clone(),
        ns,
        make_balancer(BalancerKind::Lunule, cfg.mds_capacity),
        streams,
    );
    sim.run_until(DURATION);

    // Migration lifecycle ledger: started == committed + abandoned +
    // in-flight (in flight includes jobs parked for a retry). A timed-out
    // job is therefore never silently lost — it is either back in flight,
    // committed after a retry, or abandoned on the books.
    let c = sim.migration_counters();
    assert_eq!(
        c.started_jobs,
        c.completed_jobs + c.abandoned_jobs + sim.inflight_migrations(),
        "ledger must balance (seed {seed})"
    );
    assert!(
        c.retried_jobs <= c.timed_out_jobs,
        "every retry stems from a timeout (seed {seed})"
    );

    // The journal narrates the same story as the counters. Retries do not
    // re-emit `migration_start`, so starts match started jobs exactly.
    let tel = sim.telemetry().clone();
    assert_eq!(tel.count_kind("migration_start"), c.started_jobs);
    assert_eq!(tel.count_kind("migration_commit"), c.completed_jobs);
    assert_eq!(tel.count_kind("migration_abandon"), c.abandoned_jobs);
    assert_eq!(tel.count_kind("migration_timeout"), c.timed_out_jobs);
    assert_eq!(tel.count_kind("migration_retry"), c.retried_jobs);
    assert_eq!(
        tel.count_kind("rank_crashed"),
        tel.count_kind("rank_recovered") + sim.down_ranks().iter().filter(|d| **d).count() as u64,
        "every crash recovered or is still down (seed {seed})"
    );

    // External audit battery against the final public state, including:
    // no authority — explicit entry or root default — on a down rank.
    let mut checker = InvariantChecker::default();
    checker.check_subtree_map(sim.namespace(), sim.subtree_map());
    checker.check_frag_partitions(sim.namespace());
    checker.check_conservation(sim.namespace(), sim.subtree_map(), sim.n_mds());
    checker.check_down_ranks(sim.subtree_map(), &sim.down_ranks());
    checker.assert_clean();

    let result = sim.finish();
    assert!(result.total_ops > 0, "cluster went dark (seed {seed})");
}

#[test]
fn chaos_soak_many_seeded_schedules() {
    // ≥50 distinct seeds, each with a schedule whose shape also varies
    // with the case seed, run on the worker pool (width from LUNULE_JOBS,
    // defaulting to the machine's parallelism — cases derive independent
    // RNGs, so the checked cases are identical at any width). The harness
    // prints the lowest failing seed on panic, so any violation is
    // replayable in isolation.
    propcheck::run_par(60, 0, |rng| {
        let profile = ChaosProfile {
            crashes: rng.gen_range(0..3),
            limps: rng.gen_range(0..3),
            report_losses: rng.gen_range(0..3),
            migration_stalls: rng.gen_range(0..4),
            min_down_ticks: 5,
            max_down_ticks: 60,
        };
        soak_one(rng.next_u64(), &profile);
    });
}

#[test]
fn chaos_soak_crash_heavy() {
    // A meaner profile: every fault class present, long outages, on top of
    // the same deterministic harness.
    let profile = ChaosProfile {
        crashes: 3,
        limps: 2,
        report_losses: 2,
        migration_stalls: 3,
        min_down_ticks: 20,
        max_down_ticks: 100,
    };
    lunule_util::WorkerPool::auto().map_indices(8, |seed| {
        soak_one(0xC4A0_5000_0000 + seed as u64, &profile);
    });
}
