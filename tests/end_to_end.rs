//! Cross-crate integration tests: full workload → balancer → simulation
//! pipelines at small scale, checking the paper's qualitative claims and
//! the simulator's conservation invariants.

use lunule::core::{make_balancer, BalancerKind};
use lunule::namespace::InodeId;
use lunule::sim::{RunResult, SimConfig, Simulation};
use lunule::workloads::{WorkloadKind, WorkloadSpec};

fn small_sim(n_mds: usize) -> SimConfig {
    SimConfig {
        n_mds,
        mds_capacity: 200.0,
        epoch_secs: 5,
        duration_secs: 600,
        stop_when_done: true,
        migration_bw: 3_000.0,
        migration_freeze_secs: 1,
        migration_op_cost: 0.02,
        client_rate: 40.0,
        client_cache_cap: 256,
        mds_capacities: Vec::new(),
        mds_memory_inodes: 0,
        memory_thrash_factor: 0.25,
        data_path: None,
        seed: 11,
        ..SimConfig::default()
    }
}

fn run(kind: WorkloadKind, balancer: BalancerKind, clients: usize, scale: f64) -> RunResult {
    let spec = WorkloadSpec {
        kind,
        clients,
        scale,
        seed: 1234,
    };
    let (ns, streams) = spec.build();
    let b = make_balancer(balancer, 200.0);
    Simulation::new(small_sim(5), ns, b, streams).run()
}

#[test]
fn deterministic_runs() {
    let a = run(WorkloadKind::ZipfRead, BalancerKind::Lunule, 10, 0.01);
    let b = run(WorkloadKind::ZipfRead, BalancerKind::Lunule, 10, 0.01);
    assert_eq!(a.total_ops, b.total_ops);
    assert_eq!(a.per_mds_requests_total, b.per_mds_requests_total);
    assert_eq!(a.per_mds_forwards_total, b.per_mds_forwards_total);
    assert_eq!(a.client_completion_secs, b.client_completion_secs);
    let if_a: Vec<f64> = a.epochs.iter().map(|e| e.imbalance_factor).collect();
    let if_b: Vec<f64> = b.epochs.iter().map(|e| e.imbalance_factor).collect();
    assert_eq!(if_a, if_b);
}

#[test]
fn all_requested_ops_are_served() {
    // Zipf at this scale: 10 clients x ops_per_client; every op must be
    // served exactly once (closed loop, no drops).
    let spec = WorkloadSpec {
        kind: WorkloadKind::ZipfRead,
        clients: 10,
        scale: 0.01,
        seed: 9,
    };
    let (ns, streams) = spec.build();
    let expected: u64 = streams.iter().filter_map(|s| s.len_hint()).sum();
    let r = Simulation::new(
        SimConfig {
            duration_secs: 3_000,
            ..small_sim(3)
        },
        ns,
        make_balancer(BalancerKind::Lunule, 200.0),
        streams,
    )
    .run();
    assert_eq!(r.total_ops, expected, "no op may be lost or duplicated");
    let served: u64 = r.per_mds_requests_total.iter().sum();
    assert_eq!(served, expected, "per-MDS serve counts must add up");
    assert!(r.client_completion_secs.iter().all(Option::is_some));
}

#[test]
fn lunule_balances_scans_that_defeat_vanilla() {
    // The paper's core claim (Figs 6a/7a): on a scan workload the built-in
    // balancer leaves the cluster imbalanced while Lunule spreads it.
    let vanilla = run(WorkloadKind::Cnn, BalancerKind::Vanilla, 12, 0.005);
    let lunule = run(WorkloadKind::Cnn, BalancerKind::Lunule, 12, 0.005);
    assert!(
        lunule.mean_if() < vanilla.mean_if(),
        "Lunule IF {} must beat Vanilla IF {}",
        lunule.mean_if(),
        vanilla.mean_if()
    );
    assert!(
        lunule.mean_iops() > vanilla.mean_iops() * 1.3,
        "Lunule IOPS {} must clearly beat Vanilla {}",
        lunule.mean_iops(),
        vanilla.mean_iops()
    );
}

#[test]
fn greedyspill_is_worst_on_scans() {
    let greedy = run(WorkloadKind::Cnn, BalancerKind::GreedySpill, 12, 0.005);
    let lunule = run(WorkloadKind::Cnn, BalancerKind::Lunule, 12, 0.005);
    assert!(
        greedy.mean_if() > 0.5,
        "GreedySpill stays imbalanced on scans"
    );
    assert!(lunule.mean_if() < greedy.mean_if());
}

#[test]
fn urgency_suppresses_benign_imbalance() {
    // Few idle clients: the cluster is skewed but far from capacity, so
    // Lunule must not migrate (the Fig 12b observation).
    let spec = WorkloadSpec {
        kind: WorkloadKind::ZipfRead,
        clients: 2,
        scale: 0.005,
        seed: 3,
    };
    let (ns, streams) = spec.build();
    let cfg = SimConfig {
        mds_capacity: 10_000.0, // huge headroom -> low urgency
        client_rate: 10.0,
        ..small_sim(5)
    };
    let r = Simulation::new(
        cfg.clone(),
        ns,
        make_balancer(BalancerKind::Lunule, 10_000.0),
        streams,
    )
    .run();
    assert_eq!(
        r.migrated_inodes(),
        0,
        "benign imbalance must not trigger migration"
    );
}

#[test]
fn dirhash_spreads_inodes_but_not_requests() {
    let r = run(WorkloadKind::Web, BalancerKind::DirHash, 20, 0.01);
    assert_eq!(r.migrated_inodes(), 0, "static pinning never migrates");
    // Request load is skewed: max rank way above min rank.
    let max = r.per_mds_requests_total.iter().max().unwrap();
    let min = r.per_mds_requests_total.iter().min().unwrap();
    assert!(
        *max as f64 > 1.5 * (*min as f64 + 1.0),
        "hash pinning cannot balance request load: {:?}",
        r.per_mds_requests_total
    );
    // And its traversals cross authority boundaries on every cold path.
    // (The throughput comparison against Lunule lives in the full-scale
    // fig13 experiment — at this toy scale the cluster is under-saturated
    // and ordering is noise.)
    assert!(r.total_forwards() > 0);
    assert!(
        r.total_forwards() as f64 / r.total_ops as f64 > 0.05,
        "fine-grained pinning must forward a meaningful share: {}/{}",
        r.total_forwards(),
        r.total_ops
    );
}

#[test]
fn namespace_grows_under_create_workloads_and_stays_consistent() {
    let spec = WorkloadSpec {
        kind: WorkloadKind::MdCreate,
        clients: 6,
        scale: 0.002,
        seed: 77,
    };
    let (ns, streams) = spec.build();
    let before = ns.len();
    let expected_creates: u64 = streams.iter().filter_map(|s| s.len_hint()).sum();
    let (ns2, streams2) = spec.build();
    assert_eq!(ns2.len(), before, "builders are deterministic");
    drop(ns2);
    let mut sim = Simulation::new(
        SimConfig {
            duration_secs: 2_000,
            ..small_sim(3)
        },
        ns,
        make_balancer(BalancerKind::Lunule, 200.0),
        streams2,
    );
    sim.run_until(2_000);
    assert!(sim.namespace().invariants_hold());
    let r = sim.finish();
    assert_eq!(r.final_inodes as u64, before as u64 + expected_creates);
    drop(streams);
}

#[test]
fn full_mdtest_cycle_returns_namespace_to_start() {
    // Create -> stat -> remove: the namespace must end exactly where it
    // began, with every op served, under an actively balancing cluster.
    let spec = WorkloadSpec {
        kind: WorkloadKind::MdFull,
        clients: 6,
        scale: 0.002,
        seed: 13,
    };
    let (ns, streams) = spec.build();
    let live_before = ns.live_count();
    let mut sim = Simulation::new(
        SimConfig {
            duration_secs: 4_000,
            ..small_sim(4)
        },
        ns,
        make_balancer(BalancerKind::Lunule, 200.0),
        streams,
    );
    sim.run_until(4_000);
    assert!(sim.namespace().invariants_hold());
    assert_eq!(
        sim.namespace().live_count(),
        live_before,
        "every created file must have been removed again"
    );
    let r = sim.finish();
    // 200 files per client x 3 phases x 6 clients.
    assert_eq!(r.total_ops, 6 * 200 * 3);
    assert!(r.client_completion_secs.iter().all(Option::is_some));
}

#[test]
fn cluster_expansion_increases_throughput() {
    let spec = WorkloadSpec {
        kind: WorkloadKind::ZipfRead,
        clients: 20,
        scale: 0.3,
        seed: 5,
    };
    let (ns, streams) = spec.build();
    let cfg = SimConfig {
        n_mds: 2,
        stop_when_done: false,
        duration_secs: 800,
        ..small_sim(2)
    };
    let mut sim = Simulation::new(
        cfg.clone(),
        ns,
        make_balancer(BalancerKind::Lunule, 200.0),
        streams,
    );
    sim.run_until(400);
    sim.add_mds();
    sim.add_mds();
    sim.run_until(800);
    let r = sim.finish();
    let mean = |lo: u64, hi: u64| {
        let v: Vec<f64> = r
            .epochs
            .iter()
            .filter(|e| e.time_secs > lo && e.time_secs <= hi)
            .map(|e| e.total_iops)
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let before = mean(100, 400);
    let after = mean(500, 800);
    assert!(
        after > before * 1.2,
        "expansion must raise throughput: {before} -> {after}"
    );
}

#[test]
fn frozen_subtrees_and_migration_never_lose_authority() {
    // After any run, every inode must resolve to a valid rank.
    let r = run(WorkloadKind::Mixed, BalancerKind::Lunule, 8, 0.004);
    assert!(r.total_ops > 0);
    let spec = WorkloadSpec {
        kind: WorkloadKind::Mixed,
        clients: 8,
        scale: 0.004,
        seed: 1234,
    };
    let (ns, streams) = spec.build();
    let mut sim = Simulation::new(
        small_sim(5),
        ns,
        make_balancer(BalancerKind::Lunule, 200.0),
        streams,
    );
    sim.run_until(300);
    let ns_ref = sim.namespace();
    let map = sim.subtree_map();
    for idx in (0..ns_ref.len()).step_by(97) {
        let rank = map.authority(ns_ref, InodeId::from_index(idx));
        assert!(rank.index() < 5, "dangling authority {rank:?}");
    }
    assert!(map.invariants_hold());
}

#[test]
fn data_path_dilutes_metadata_gains() {
    // With a slow data path, both balancers converge toward data-bound
    // completion times (the Fig 8 Web observation).
    let spec = WorkloadSpec {
        kind: WorkloadKind::ZipfRead,
        clients: 8,
        scale: 0.005,
        seed: 21,
    };
    let jct = |balancer, dp: Option<lunule::sim::DataPathConfig>| {
        let (ns, streams) = spec.build();
        let cfg = SimConfig {
            data_path: dp,
            duration_secs: 40_000,
            ..small_sim(5)
        };
        let r = Simulation::new(cfg.clone(), ns, make_balancer(balancer, 200.0), streams).run();
        r.jct_percentile(1.0).expect("run must finish") as f64
    };
    let slow_data = Some(lunule::sim::DataPathConfig {
        osd_bandwidth: 2_000_000,
        client_window: 64 << 10,
    });
    let meta_vanilla = jct(BalancerKind::Vanilla, None);
    let meta_lunule = jct(BalancerKind::Lunule, None);
    let data_vanilla = jct(BalancerKind::Vanilla, slow_data);
    let data_lunule = jct(BalancerKind::Lunule, slow_data);
    let meta_gap = (meta_vanilla - meta_lunule).abs() / meta_vanilla;
    let data_gap = (data_vanilla - data_lunule).abs() / data_vanilla;
    assert!(
        data_gap <= meta_gap + 0.05,
        "data path must not amplify the balancer gap: meta {meta_gap:.3} vs data {data_gap:.3}"
    );
    assert!(
        data_vanilla > meta_vanilla,
        "data path lengthens completion"
    );
}
