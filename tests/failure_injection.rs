//! Failure-injection and edge-case tests: degenerate configurations the
//! simulator and balancers must survive gracefully.

use lunule::core::{make_balancer, BalancerKind};
use lunule::namespace::{InodeId, Namespace};
use lunule::sim::{FixedStream, OpStream, SimConfig, Simulation};
use lunule::workloads::{WorkloadKind, WorkloadSpec};

fn base_cfg() -> SimConfig {
    SimConfig {
        n_mds: 3,
        mds_capacity: 100.0,
        epoch_secs: 5,
        duration_secs: 200,
        stop_when_done: true,
        migration_bw: 1_000.0,
        migration_freeze_secs: 1,
        migration_op_cost: 0.02,
        client_rate: 20.0,
        client_cache_cap: 64,
        mds_capacities: Vec::new(),
        mds_memory_inodes: 0,
        memory_thrash_factor: 0.25,
        data_path: None,
        seed: 2,
        ..SimConfig::default()
    }
}

fn tiny_workload(clients: usize) -> (Namespace, Vec<Box<dyn OpStream>>) {
    WorkloadSpec {
        kind: WorkloadKind::ZipfRead,
        clients,
        scale: 0.005,
        seed: 8,
    }
    .build()
}

#[test]
fn zero_migration_bandwidth_stalls_rebalance_but_not_service() {
    // Migrations enqueue but never finish: the cluster must keep serving
    // and never flip authority.
    let (ns, streams) = tiny_workload(6);
    let cfg = SimConfig {
        migration_bw: 0.0,
        ..base_cfg()
    };
    let r = Simulation::new(
        cfg.clone(),
        ns,
        make_balancer(BalancerKind::Lunule, 100.0),
        streams,
    )
    .run();
    assert!(r.total_ops > 0, "service must continue");
    assert_eq!(
        r.migrated_inodes(),
        0,
        "nothing can complete at 0 bandwidth"
    );
    // Everything stayed on rank 0.
    assert_eq!(r.per_mds_requests_total[1] + r.per_mds_requests_total[2], 0);
}

#[test]
fn single_mds_cluster_never_migrates() {
    let (ns, streams) = tiny_workload(4);
    let cfg = SimConfig {
        n_mds: 1,
        ..base_cfg()
    };
    for kind in [
        BalancerKind::Lunule,
        BalancerKind::Vanilla,
        BalancerKind::GreedySpill,
        BalancerKind::DirHash,
    ] {
        let (ns2, streams2) = tiny_workload(4);
        let r = Simulation::new(cfg.clone(), ns2, make_balancer(kind, 100.0), streams2).run();
        assert_eq!(r.migrated_inodes(), 0, "{kind:?} migrated on 1 MDS");
        assert!(r.total_ops > 0);
    }
    drop((ns, streams));
}

#[test]
fn empty_namespace_and_no_clients() {
    let ns = Namespace::new();
    let r = Simulation::new(
        base_cfg(),
        ns,
        make_balancer(BalancerKind::Lunule, 100.0),
        Vec::new(),
    )
    .run();
    assert_eq!(r.total_ops, 0);
    assert!(r.client_completion_secs.is_empty());
}

#[test]
fn client_with_empty_stream_finishes_immediately() {
    let mut ns = Namespace::new();
    let d = ns.mkdir(InodeId::ROOT, "d").unwrap();
    let f = ns.create_file(d, "f", 1).unwrap();
    let streams: Vec<Box<dyn OpStream>> = vec![
        Box::new(FixedStream::new(vec![])),
        Box::new(FixedStream::new(vec![f])),
    ];
    let r = Simulation::new(
        base_cfg(),
        ns,
        make_balancer(BalancerKind::Lunule, 100.0),
        streams,
    )
    .run();
    assert_eq!(r.total_ops, 1);
    assert!(r.client_completion_secs.iter().all(Option::is_some));
    // The empty client finished at tick 0.
    assert_eq!(r.client_completion_secs[0], Some(0));
}

#[test]
fn long_freeze_window_delays_but_preserves_ops() {
    let (ns, streams) = tiny_workload(6);
    let expected: u64 = streams.iter().filter_map(|s| s.len_hint()).sum();
    let cfg = SimConfig {
        migration_freeze_secs: 20,
        duration_secs: 3_000,
        ..base_cfg()
    };
    let r = Simulation::new(
        cfg.clone(),
        ns,
        make_balancer(BalancerKind::Lunule, 100.0),
        streams,
    )
    .run();
    assert_eq!(r.total_ops, expected, "frozen ops must retry, not vanish");
}

#[test]
fn brutal_migration_cost_still_converges() {
    // Migration op-cost so high that each transferred inode eats budget:
    // the run slows down but remains live and consistent.
    let (ns, streams) = tiny_workload(6);
    let cfg = SimConfig {
        migration_op_cost: 0.5,
        duration_secs: 2_000,
        ..base_cfg()
    };
    let mut sim = Simulation::new(
        cfg.clone(),
        ns,
        make_balancer(BalancerKind::Lunule, 100.0),
        streams,
    );
    sim.run_until(2_000);
    assert!(sim.namespace().invariants_hold());
    assert!(sim.subtree_map().invariants_hold());
    let r = sim.finish();
    assert!(r.total_ops > 0);
}

#[test]
fn adding_mds_to_finished_cluster_is_harmless() {
    let (ns, streams) = tiny_workload(2);
    let mut sim = Simulation::new(
        SimConfig {
            stop_when_done: false,
            ..base_cfg()
        },
        ns,
        make_balancer(BalancerKind::Lunule, 100.0),
        streams,
    );
    sim.run_until(150);
    sim.add_mds();
    sim.add_mds();
    sim.run_until(200);
    let r = sim.finish();
    assert_eq!(r.epochs.last().unwrap().per_mds_iops.len(), 5);
}

#[test]
fn drained_mds_fails_over_and_cluster_recovers() {
    use lunule::namespace::MdsRank;
    let (ns, streams) = tiny_workload(8);
    let expected: u64 = streams.iter().filter_map(|s| s.len_hint()).sum();
    let mut sim = Simulation::new(
        SimConfig {
            duration_secs: 4_000,
            stop_when_done: true,
            ..base_cfg()
        },
        ns,
        make_balancer(BalancerKind::Lunule, 100.0),
        streams,
    );
    // Let the balancer spread load, then kill rank 1.
    sim.run_until(100);
    sim.drain_mds(MdsRank(1));
    // Every inode must still resolve to a live rank.
    let map = sim.subtree_map();
    let ns_ref = sim.namespace();
    for idx in (0..ns_ref.len()).step_by(53) {
        let r = map.authority(ns_ref, lunule::namespace::InodeId::from_index(idx));
        assert_ne!(r, MdsRank(1), "no authority may remain on the drained rank");
    }
    sim.run_until(4_000);
    let r = sim.finish();
    assert_eq!(r.total_ops, expected, "every op must still complete");
    // The drained rank served nothing after the drain point: its total is
    // frozen at whatever it had served in the first 100 seconds.
    let drained_total = r.per_mds_requests_total[1];
    assert!(
        drained_total <= 100 * 100,
        "drained rank kept serving: {drained_total}"
    );
    assert!(r.client_completion_secs.iter().all(Option::is_some));
}

#[test]
fn memory_pressure_throttles_overloaded_rank() {
    // MDtest grows the namespace without bound; with a resident-inode
    // memory limit, ranks over the limit thrash and throughput drops —
    // the paper's "MDSs run out of memory beyond 15 minutes" note
    // (Fig. 6 caption), modelled as degradation instead of a crash.
    let build = || {
        WorkloadSpec {
            kind: WorkloadKind::MdCreate,
            clients: 12,
            scale: 0.05,
            seed: 4,
        }
        .build()
    };
    let run = |limit: u64| {
        let (ns, streams) = build();
        let cfg = SimConfig {
            mds_memory_inodes: limit,
            memory_thrash_factor: 0.2,
            duration_secs: 120,
            stop_when_done: false,
            client_rate: 60.0,
            ..base_cfg()
        };
        Simulation::new(cfg, ns, make_balancer(BalancerKind::Lunule, 100.0), streams).run()
    };
    let unlimited = run(0);
    let squeezed = run(500); // 12 clients x 5000 creates blow through this
    assert!(
        squeezed.total_ops < unlimited.total_ops,
        "memory thrash must cost throughput: {} vs {}",
        squeezed.total_ops,
        unlimited.total_ops
    );
    // The epoch series records the growing resident footprint.
    let last = squeezed.epochs.last().unwrap();
    assert!(last.per_mds_resident_inodes.iter().sum::<u64>() > 500);
}

#[test]
fn all_balancers_survive_every_workload_smoke() {
    for kind in [
        BalancerKind::Lunule,
        BalancerKind::LunuleLight,
        BalancerKind::Vanilla,
        BalancerKind::GreedySpill,
        BalancerKind::DirHash,
        BalancerKind::Off,
    ] {
        for wl in [
            WorkloadKind::Cnn,
            WorkloadKind::Nlp,
            WorkloadKind::Web,
            WorkloadKind::ZipfRead,
            WorkloadKind::MdCreate,
            WorkloadKind::Mixed,
        ] {
            let (ns, streams) = WorkloadSpec {
                kind: wl,
                clients: 4,
                scale: 0.002,
                seed: 3,
            }
            .build();
            let cfg = SimConfig {
                duration_secs: 60,
                stop_when_done: false,
                ..base_cfg()
            };
            let r = Simulation::new(cfg.clone(), ns, make_balancer(kind, 100.0), streams).run();
            assert!(r.total_ops > 0, "{kind:?}/{wl:?} served nothing");
            for e in &r.epochs {
                assert!(
                    (0.0..=1.0).contains(&e.imbalance_factor),
                    "{kind:?}/{wl:?} IF out of range"
                );
            }
        }
    }
}
