//! Crash-recovery behaviour: a crashed rank rejoins empty and the
//! balancer re-fills it, and same-seed same-schedule chaos runs are
//! byte-identical at the telemetry level.

use lunule_core::{make_balancer, BalancerKind};
use lunule_namespace::MdsRank;
use lunule_sim::{seeded, ChaosProfile, FaultPlan, SimConfig, Simulation};
use lunule_telemetry::{events_jsonl, Telemetry};
use lunule_workloads::{WorkloadKind, WorkloadSpec};

fn hot_workload(
    seed: u64,
    scale: f64,
) -> (
    lunule_namespace::Namespace,
    Vec<Box<dyn lunule_sim::OpStream>>,
) {
    WorkloadSpec {
        kind: WorkloadKind::ZipfRead,
        clients: 8,
        scale,
        seed,
    }
    .build()
}

#[test]
fn recovered_rank_is_refilled_by_the_balancer() {
    // Crash rank 1 after the balancer has spread load onto it; once it
    // recovers (empty), the balancer must re-export load back within a
    // few epochs — the rank does not stay a spectator forever.
    let (ns, streams) = hot_workload(11, 0.1);
    let cfg = SimConfig {
        n_mds: 2,
        mds_capacity: 120.0,
        epoch_secs: 5,
        duration_secs: 400,
        stop_when_done: false,
        migration_bw: 2_000.0,
        client_rate: 40.0,
        seed: 11,
        faults: FaultPlan::new().crash(100, MdsRank(1), 40).build(),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(
        cfg.clone(),
        ns,
        make_balancer(BalancerKind::Lunule, cfg.mds_capacity),
        streams,
    );

    // Pre-crash: the balancer has moved something onto rank 1.
    sim.run_until(100);
    let before = sim.resident_inodes()[1];
    assert!(before > 0, "balancer never used rank 1 before the crash");

    // Mid-outage: rank 1 owns nothing.
    sim.run_until(120);
    assert!(sim.is_rank_down(MdsRank(1)));
    assert_eq!(sim.resident_inodes()[1], 0);

    // Post-recovery: within K epochs the balancer re-fills the rank.
    const K_EPOCHS: u64 = 20;
    sim.run_until(140 + K_EPOCHS * 5);
    assert!(!sim.is_rank_down(MdsRank(1)));
    assert!(
        sim.resident_inodes()[1] > 0,
        "recovered rank was never re-filled"
    );
    let r = sim.finish();
    assert!(r.total_ops > 0);
}

/// Runs one chaos simulation and returns its full telemetry journal as
/// JSONL text.
fn chaos_journal(seed: u64) -> String {
    const N_MDS: usize = 3;
    const DURATION: u64 = 150;
    let (ns, streams) = hot_workload(seed, 0.01);
    let cfg = SimConfig {
        n_mds: N_MDS,
        mds_capacity: 100.0,
        epoch_secs: 5,
        duration_secs: DURATION,
        stop_when_done: false,
        migration_bw: 50.0,
        migration_timeout_ticks: 5,
        migration_max_retries: 2,
        migration_backoff_ticks: 2,
        client_rate: 30.0,
        seed,
        telemetry: Telemetry::enabled(),
        faults: seeded(seed, N_MDS, DURATION, &ChaosProfile::default()),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(
        cfg.clone(),
        ns,
        make_balancer(BalancerKind::Lunule, cfg.mds_capacity),
        streams,
    );
    sim.run_until(DURATION);
    let snap = sim.telemetry().snapshot().expect("telemetry enabled");
    events_jsonl(&snap)
}

#[test]
fn same_seed_same_schedule_is_byte_identical() {
    // Fault injection must not smuggle in any nondeterminism: two runs
    // from the same seed and schedule produce identical journals, and a
    // different seed produces a different one.
    let a = chaos_journal(42);
    let b = chaos_journal(42);
    assert_eq!(a, b, "same-seed chaos runs diverged");
    assert!(
        a.contains("fault_injected"),
        "the schedule must actually fire for this check to mean anything"
    );
    let c = chaos_journal(43);
    assert_ne!(a, c, "different seeds should differ");
}
