//! Full-workload invariant sweeps: runs real simulations across the bundled
//! workloads and audits the whole stack with `lunule-verify` at every epoch
//! boundary. With `--features strict-invariants` the simulator additionally
//! audits itself after every tick and panics on the first violation, so a
//! green run of this file under that feature is the "zero violations over a
//! full simulation" acceptance check.

use lunule_core::{make_balancer, BalancerKind};
use lunule_sim::{SimConfig, Simulation};
use lunule_verify::InvariantChecker;
use lunule_workloads::{WorkloadKind, WorkloadSpec};

/// Runs `kind` under `balancer`, pausing every few simulated seconds to run
/// the external audit battery against the simulation's public state.
fn run_audited(kind: WorkloadKind, balancer: BalancerKind) {
    let (ns, streams) = WorkloadSpec {
        kind,
        clients: 8,
        scale: 0.01,
        seed: 7,
    }
    .build();
    let cfg = SimConfig {
        n_mds: 3,
        mds_capacity: 200.0,
        epoch_secs: 5,
        duration_secs: 120,
        stop_when_done: true,
        migration_bw: 2_000.0,
        migration_freeze_secs: 1,
        migration_op_cost: 0.02,
        client_rate: 30.0,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(
        cfg.clone(),
        ns,
        make_balancer(balancer, cfg.mds_capacity),
        streams,
    );
    let mut checker = InvariantChecker::default();
    let mut t = 0;
    while t < cfg.duration_secs {
        t += cfg.epoch_secs;
        sim.run_until(t);
        checker.check_subtree_map(sim.namespace(), sim.subtree_map());
        checker.check_frag_partitions(sim.namespace());
        checker.check_conservation(sim.namespace(), sim.subtree_map(), sim.n_mds());
        checker.assert_clean();
    }
    let result = sim.finish();
    assert!(result.total_ops > 0, "{kind:?}/{balancer:?} served nothing");
}

#[test]
fn zipf_read_under_lunule_is_invariant_clean() {
    run_audited(WorkloadKind::ZipfRead, BalancerKind::Lunule);
}

#[test]
fn zipf_read_under_vanilla_is_invariant_clean() {
    run_audited(WorkloadKind::ZipfRead, BalancerKind::Vanilla);
}

#[test]
fn web_trace_under_lunule_is_invariant_clean() {
    run_audited(WorkloadKind::Web, BalancerKind::Lunule);
}

#[test]
fn md_full_under_lunule_is_invariant_clean() {
    run_audited(WorkloadKind::MdFull, BalancerKind::Lunule);
}

#[test]
fn mixed_under_lunule_is_invariant_clean() {
    run_audited(WorkloadKind::Mixed, BalancerKind::Lunule);
}
